#include "robustness/chaos.h"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <sstream>

#include "common/hash.h"
#include "common/logging.h"
#include "common/rng.h"
#include "data/serde.h"
#include "durability/durable_tier.h"
#include "observability/flight_recorder.h"
#include "observability/work_ledger.h"
#include "storage/memo_store.h"

namespace slider::robustness {
namespace {

// Walks a segment file's frames and returns the byte offset where the last
// complete frame starts (== size when the file holds none). Used to place a
// replica-divergence truncation exactly at a frame boundary, so every
// remaining frame stays CRC-intact.
std::uint64_t last_frame_start(const std::string& path, std::uint64_t size) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return size;
  std::uint64_t offset = 0;
  std::uint64_t last = size;
  char header[durability::kLogHeaderBytes];
  while (offset + sizeof(header) <= size) {
    if (std::fseek(f, static_cast<long>(offset), SEEK_SET) != 0) break;
    if (std::fread(header, 1, sizeof(header), f) < sizeof(header)) break;
    std::string_view hv(header, sizeof(header));
    std::uint32_t body_len = 0;
    wire::get_u32(hv, &body_len);
    if (body_len < durability::kLogBodyFixedBytes ||
        body_len > durability::kLogMaxPlausibleBody ||
        offset + sizeof(header) + body_len > size) {
      break;
    }
    last = offset;
    offset += sizeof(header) + body_len;
  }
  std::fclose(f);
  return last;
}

}  // namespace

std::string_view chaos_event_name(ChaosEventType type) {
  switch (type) {
    case ChaosEventType::kMachineCrash: return "machine_crash";
    case ChaosEventType::kMachineRecover: return "machine_recover";
    case ChaosEventType::kStragglerOnset: return "straggler_onset";
    case ChaosEventType::kStragglerClear: return "straggler_clear";
    case ChaosEventType::kMemoMemoryLoss: return "memo_memory_loss";
    case ChaosEventType::kDurableErrorOnset: return "durable_error_onset";
    case ChaosEventType::kDurableErrorClear: return "durable_error_clear";
    case ChaosEventType::kBitRot: return "bit_rot";
    case ChaosEventType::kReplicaDivergence: return "replica_divergence";
  }
  return "unknown";
}

ChaosSchedule ChaosSchedule::generate(std::uint64_t seed,
                                      const ChaosOptions& options,
                                      int num_machines) {
  SLIDER_CHECK(num_machines > 0) << "chaos schedule needs machines";
  ChaosSchedule schedule;
  schedule.seed_ = seed;
  schedule.options_ = options;
  Rng rng(hash_combine(seed, 0xC4A05));
  auto draw_time = [&] {
    return options.horizon * (0.02 + 0.93 * rng.next_double());
  };

  // --- machine crashes + recoveries, under the liveness floor ------------
  // Walk candidate crash times in order, tracking which machines are down
  // and when they come back, and only schedule a crash while it leaves
  // min_live_machines alive. Machine 0 is optionally protected so a final
  // task attempt always has a machine that cannot die under it.
  constexpr SimDuration kForever = std::numeric_limits<SimDuration>::infinity();
  std::vector<SimDuration> crash_times;
  crash_times.reserve(static_cast<std::size_t>(options.crash_events));
  for (int i = 0; i < options.crash_events; ++i) {
    crash_times.push_back(draw_time());
  }
  std::sort(crash_times.begin(), crash_times.end());
  std::vector<SimDuration> down_until(static_cast<std::size_t>(num_machines),
                                      -1);  // < 0: live
  int live = num_machines;
  const int min_live = std::max(1, options.min_live_machines);
  for (const SimDuration t : crash_times) {
    for (std::size_t m = 0; m < down_until.size(); ++m) {
      if (down_until[m] >= 0 && down_until[m] <= t) {
        down_until[m] = -1;
        ++live;
      }
    }
    if (live - 1 < min_live) continue;  // crashing now would break the floor
    std::vector<MachineId> candidates;
    for (int m = options.protect_machine0 ? 1 : 0; m < num_machines; ++m) {
      if (down_until[static_cast<std::size_t>(m)] < 0) {
        candidates.push_back(static_cast<MachineId>(m));
      }
    }
    if (candidates.empty()) continue;
    const MachineId victim = candidates[rng.next_below(candidates.size())];
    const SimDuration recover_at =
        t + options.horizon * (0.10 + 0.25 * rng.next_double());
    schedule.events_.push_back(
        ChaosEvent{t, ChaosEventType::kMachineCrash, victim, 1.0});
    --live;
    if (recover_at < options.horizon) {
      schedule.events_.push_back(
          ChaosEvent{recover_at, ChaosEventType::kMachineRecover, victim, 1.0});
      down_until[static_cast<std::size_t>(victim)] = recover_at;
    } else {
      down_until[static_cast<std::size_t>(victim)] = kForever;
    }
  }

  // --- stragglers --------------------------------------------------------
  for (int i = 0; i < options.straggler_events; ++i) {
    const SimDuration t = draw_time();
    const auto machine =
        static_cast<MachineId>(rng.next_below(
            static_cast<std::uint64_t>(num_machines)));
    const double factor = 2.0 + 6.0 * rng.next_double();
    const SimDuration clear_at =
        t + options.horizon * (0.05 + 0.20 * rng.next_double());
    schedule.events_.push_back(
        ChaosEvent{t, ChaosEventType::kStragglerOnset, machine, factor});
    if (clear_at < options.horizon) {
      schedule.events_.push_back(
          ChaosEvent{clear_at, ChaosEventType::kStragglerClear, machine, 1.0});
    }
  }

  // --- transient in-memory memo loss -------------------------------------
  for (int i = 0; i < options.memo_loss_events; ++i) {
    const SimDuration t = draw_time();
    const auto machine =
        static_cast<MachineId>(rng.next_below(
            static_cast<std::uint64_t>(num_machines)));
    schedule.events_.push_back(
        ChaosEvent{t, ChaosEventType::kMemoMemoryLoss, machine, 1.0});
  }

  // --- durable-tier write-error windows ----------------------------------
  for (int i = 0; i < options.durable_error_events; ++i) {
    const SimDuration t = draw_time();
    const SimDuration clear_at =
        t + options.horizon * (0.05 + 0.15 * rng.next_double());
    schedule.events_.push_back(
        ChaosEvent{t, ChaosEventType::kDurableErrorOnset, -1, 1.0});
    schedule.events_.push_back(ChaosEvent{
        std::min(clear_at, options.horizon * 0.98),
        ChaosEventType::kDurableErrorClear, -1, 1.0});
  }

  // --- at-rest corruption (bit rot + replica divergence) ------------------
  // Drawn last so enabling them never perturbs the draws above: a legacy
  // seed with both counts at 0 replays bit-identically. Targets (replica,
  // segment, byte, bit) are resolved at apply time from the pre-drawn
  // entropy, since no segment files exist while the schedule is generated.
  for (int i = 0; i < options.bit_rot_events; ++i) {
    const SimDuration t = draw_time();
    schedule.events_.push_back(
        ChaosEvent{t, ChaosEventType::kBitRot, -1, 1.0, rng.next_u64()});
  }
  for (int i = 0; i < options.replica_divergence_events; ++i) {
    const SimDuration t = draw_time();
    schedule.events_.push_back(ChaosEvent{
        t, ChaosEventType::kReplicaDivergence, -1, 1.0, rng.next_u64()});
  }

  std::stable_sort(schedule.events_.begin(), schedule.events_.end(),
                   [](const ChaosEvent& a, const ChaosEvent& b) {
                     return a.at < b.at;
                   });
  return schedule;
}

std::string ChaosSchedule::to_string() const {
  std::ostringstream out;
  out << "chaos schedule seed=" << seed_ << " events=" << events_.size()
      << "\n";
  for (const ChaosEvent& event : events_) {
    out << "  t=" << event.at << " " << chaos_event_name(event.type);
    if (event.machine >= 0) out << " machine=" << event.machine;
    if (event.type == ChaosEventType::kStragglerOnset) {
      out << " factor=" << event.factor;
    }
    out << "\n";
  }
  return out.str();
}

ChaosController::ChaosController(ChaosSchedule schedule, ChaosTargets targets)
    : schedule_(std::move(schedule)), targets_(targets) {
  SLIDER_CHECK(targets_.cluster != nullptr) << "chaos needs a cluster";
}

ChaosController::~ChaosController() {
  // Never leave a dangling injector behind on the durable tier.
  if (durable_error_active_ && targets_.durable != nullptr) {
    for (std::size_t r = 0; r < targets_.durable->replicas(); ++r) {
      targets_.durable->set_fault_injector(r, nullptr);
    }
  }
}

std::size_t ChaosController::apply_until(SimDuration now) {
  std::size_t applied = 0;
  const auto& events = schedule_.events();
  while (next_event_ < events.size() && events[next_event_].at <= now) {
    apply(events[next_event_]);
    ++next_event_;
    ++applied;
  }
  now_ = std::max(now_, now);
  return applied;
}

void ChaosController::apply(const ChaosEvent& event) {
  Cluster& cluster = *targets_.cluster;
  ++counters_.events_applied;
  // Every applied event lands in the flight recorder's fault log; the
  // destructive ones also request a post-mortem dump at the next slide
  // boundary. Clears/recoveries are context, not triggers.
  const bool destructive = event.type == ChaosEventType::kMachineCrash ||
                           event.type == ChaosEventType::kStragglerOnset ||
                           event.type == ChaosEventType::kMemoMemoryLoss ||
                           event.type == ChaosEventType::kDurableErrorOnset ||
                           event.type == ChaosEventType::kBitRot ||
                           event.type == ChaosEventType::kReplicaDivergence;
  obs::FlightRecorder::global().note_fault(
      chaos_event_name(event.type),
      event.type == ChaosEventType::kStragglerOnset
          ? "slowdown factor " + std::to_string(event.factor)
          : std::string("chaos schedule seed ") +
                std::to_string(schedule_.seed()),
      event.at, event.machine, /*request_dump=*/destructive);
  switch (event.type) {
    case ChaosEventType::kMachineCrash:
      cluster.fail_machine(event.machine);
      // The victim's in-memory memo copies die with it; persistent
      // replicas on live machines keep serving, and a total loss degrades
      // to recompute billed as failure_reexec.
      if (targets_.memo != nullptr) targets_.memo->drop_memory_on_failed();
      ++counters_.crashes;
      obs::WorkLedger::global().note_failure_injected();
      break;
    case ChaosEventType::kMachineRecover:
      cluster.recover_machine(event.machine);
      ++counters_.recoveries;
      break;
    case ChaosEventType::kStragglerOnset:
      cluster.set_straggler(event.machine, std::max(1.0, event.factor));
      ++counters_.stragglers;
      obs::WorkLedger::global().note_failure_injected();
      break;
    case ChaosEventType::kStragglerClear:
      cluster.set_straggler(event.machine, 1.0);
      break;
    case ChaosEventType::kMemoMemoryLoss:
      // Transient cache loss: drop the machine's memory-tier copies
      // without failing it (fail/drop/recover leaves every other machine
      // untouched and the victim alive with a cold cache).
      if (targets_.memo != nullptr && event.machine >= 0 &&
          event.machine < cluster.num_machines()) {
        const bool was_failed = cluster.machine(event.machine).failed;
        if (!was_failed) cluster.fail_machine(event.machine);
        targets_.memo->drop_memory_on_failed();
        if (!was_failed) cluster.recover_machine(event.machine);
      }
      ++counters_.memo_losses;
      obs::WorkLedger::global().note_failure_injected();
      break;
    case ChaosEventType::kDurableErrorOnset:
      if (targets_.durable != nullptr && !durable_error_active_) {
        for (std::size_t r = 0; r < targets_.durable->replicas(); ++r) {
          targets_.durable->set_fault_injector(r, &reject_all_);
        }
        durable_error_active_ = true;
        ++counters_.durable_error_windows;
        obs::WorkLedger::global().note_failure_injected();
      }
      break;
    case ChaosEventType::kDurableErrorClear:
      if (targets_.durable != nullptr && durable_error_active_) {
        for (std::size_t r = 0; r < targets_.durable->replicas(); ++r) {
          targets_.durable->set_fault_injector(r, nullptr);
        }
        durable_error_active_ = false;
        // The write-error window is over: reopen failed logs and drain
        // the degraded buffer now instead of waiting for the backoff.
        if (targets_.memo != nullptr) targets_.memo->flush_durable();
      }
      break;
    case ChaosEventType::kBitRot: {
      // Silent at-rest corruption: flip one bit in a random flushed
      // segment record. The integrity scrubber must detect it via the
      // frame CRC and quarantine the segment — outputs stay byte-identical
      // to a corruption-free control.
      if (targets_.durable == nullptr) break;
      durability::DurableTier& tier = *targets_.durable;
      tier.flush();  // everything appended so far is at rest
      struct Candidate {
        std::string path;
        std::uint64_t size;
      };
      std::vector<Candidate> candidates;
      for (std::size_t r = 0; r < tier.replicas(); ++r) {
        for (std::string& path :
             durability::SegmentLog::list_segments(tier.log(r).dir())) {
          const auto size = durability::FileFaultInjector::file_size(path);
          if (size.has_value() && *size > durability::kLogHeaderBytes) {
            candidates.push_back(Candidate{std::move(path), *size});
          }
        }
      }
      if (candidates.empty()) break;  // nothing at rest yet: benign no-op
      const Candidate& target =
          candidates[event.entropy % candidates.size()];
      const std::uint64_t byte = mix64(event.entropy) % target.size;
      const int bit =
          static_cast<int>(mix64(event.entropy ^ 0xB17B17) % 8);
      if (durability::FileFaultInjector::flip_bit(target.path, byte, bit)) {
        ++counters_.bit_rots;
        obs::WorkLedger::global().note_failure_injected();
        SLIDER_LOG(Info) << "chaos: bit rot in " << target.path << " byte "
                         << byte << " bit " << bit;
      }
      break;
    }
    case ChaosEventType::kReplicaDivergence: {
      // Drop one replica's newest at-rest record by truncating exactly at
      // its frame start: every remaining frame stays intact, so the only
      // symptom is a stale/missing newest seq for that key — the pure
      // anti-entropy path of the scrubber, with no CRC failure involved.
      if (targets_.durable == nullptr) break;
      durability::DurableTier& tier = *targets_.durable;
      tier.flush();
      const std::size_t victim = event.entropy % tier.replicas();
      durability::SegmentLog& log = tier.log(victim);
      if (log.failed()) break;
      // Seal the active segment first: truncating under the writer's open
      // stream would leave its append position past EOF.
      log.rotate_now();
      auto segments = durability::SegmentLog::list_segments(log.dir());
      for (auto it = segments.rbegin(); it != segments.rend(); ++it) {
        const auto size = durability::FileFaultInjector::file_size(*it);
        if (!size.has_value() || *size < durability::kLogHeaderBytes) {
          continue;
        }
        const std::uint64_t frame = last_frame_start(*it, *size);
        if (frame >= *size) continue;  // no complete frame in this segment
        if (durability::FileFaultInjector::truncate_tail(*it,
                                                         *size - frame)) {
          ++counters_.replica_divergences;
          obs::WorkLedger::global().note_failure_injected();
          SLIDER_LOG(Info) << "chaos: replica " << victim
                           << " diverged, dropped newest record of " << *it;
        }
        break;  // newest record lives in the last segment that has one
      }
      break;
    }
  }
}

StageFaultPlan ChaosController::stage_faults(SimDuration stage_start) const {
  StageFaultPlan plan;
  const ChaosOptions& options = schedule_.options();
  plan.max_attempts = options.max_attempts;
  plan.backoff_base = options.backoff_base;
  plan.blacklist_threshold = options.blacklist_threshold;

  const Cluster& cluster = *targets_.cluster;
  for (MachineId m = 0; m < cluster.num_machines(); ++m) {
    if (cluster.machine(m).failed) plan.dead_machines.push_back(m);
  }

  // Every not-yet-applied crash, translated to stage-relative time. A
  // crash whose absolute time already passed (it fell inside an earlier
  // stage of the same slide) clamps to 0: dead from this stage's start.
  // Crashes far beyond the stage's makespan never trigger — harmless.
  const auto& events = schedule_.events();
  for (std::size_t i = next_event_; i < events.size(); ++i) {
    if (events[i].type != ChaosEventType::kMachineCrash) continue;
    plan.crashes.push_back(StageFaultPlan::Crash{
        events[i].machine,
        std::max<SimDuration>(0, events[i].at - stage_start)});
  }

  // Deterministic injected attempt failures: a pure hash draw over
  // (seed, stage_start, task, attempt, machine). No RNG state — the same
  // stage replayed yields the same failures.
  const double prob = options.attempt_failure_prob;
  if (prob > 0) {
    const std::uint64_t stage_key = hash_combine(
        hash_combine(schedule_.seed(), 0xA77E),
        static_cast<std::uint64_t>(stage_start * 1048576.0));
    plan.attempt_fails = [stage_key, prob](std::size_t task, int attempt,
                                           MachineId machine) {
      const std::uint64_t h = hash_combine(
          hash_combine(stage_key, static_cast<std::uint64_t>(task)),
          hash_combine(static_cast<std::uint64_t>(attempt) + 0x51,
                       static_cast<std::uint64_t>(machine) + 0xA1));
      return static_cast<double>(h >> 11) * 0x1.0p-53 < prob;
    };
  }
  return plan;
}

}  // namespace slider::robustness
