// Chaos engine: seeded, deterministic fault injection across the cluster,
// storage, and durability layers (paper §6 fault tolerance, made a
// continuously exercised property).
//
// The paper argues Slider tolerates worker failures because memoized state
// is replicated and lost work is simply recomputed. Before this layer the
// repo only modelled failure as a *pre-run* configuration: a machine could
// be marked failed before a slide, but nothing ever died mid-run, no task
// attempt ever failed, and a durable-tier write error was terminal. The
// chaos engine turns failure into a first-class, replayable input:
//
//   * ChaosSchedule::generate(seed, options, num_machines) draws a sorted
//     event list in simulated time — machine crash / recover, straggler
//     onset / clear, in-memory memo loss, durable-tier write-error windows
//     — under the invariant that at least `min_live_machines` stay alive
//     at every instant (and machine 0 never crashes, so a final task
//     attempt always has a guaranteed-live home).
//   * ChaosController applies those events to the live system: crashes
//     flip Cluster failure flags and drop the victim's in-memory memo
//     copies mid-run; durable error windows attach an always-fail
//     FaultInjector to every replica log (driving MemoStore into its
//     buffered degraded mode) and force a drain when the window closes.
//   * As a StageFaultProvider it also translates upcoming crashes into
//     per-stage StageFaultPlans, so the stage simulator kills running
//     attempts at the crash instant and re-executes them on live slots —
//     plus a deterministic per-(task, attempt, machine) injected-failure
//     draw derived purely from the seed.
//
// Everything is a pure function of (seed, options, num_machines) and the
// sequence of advance_to() calls, so a chaos run replays bit-identically —
// the property tools/chaos_soak turns into a CI invariant: outputs are
// byte-identical to a failure-free control, retries stay within the
// attempt cap, and every recompute is ledger-attributed.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "cluster/cluster.h"
#include "cluster/simulator.h"
#include "durability/fault_injector.h"

namespace slider {
class MemoStore;
}
namespace slider::durability {
class DurableTier;
}

namespace slider::robustness {

enum class ChaosEventType : std::uint8_t {
  kMachineCrash = 0,   // fail the machine; its memory-tier memo copies die
  kMachineRecover,     // machine returns (cold caches)
  kStragglerOnset,     // machine slows down by `factor`
  kStragglerClear,     // straggler returns to speed 1
  kMemoMemoryLoss,     // drop the machine's in-memory memo copies without
                       // failing it (transient cache loss)
  kDurableErrorOnset,  // every durable replica log starts rejecting writes
  kDurableErrorClear,  // write errors clear; degraded buffer drains
  kBitRot,             // flip one bit in a random at-rest segment record
  kReplicaDivergence,  // drop one replica's newest at-rest record (clean
                       // frame-boundary truncation: stale seq, no CRC fail)
};

std::string_view chaos_event_name(ChaosEventType type);

struct ChaosEvent {
  SimDuration at = 0;  // absolute simulated time
  ChaosEventType type = ChaosEventType::kMachineCrash;
  MachineId machine = -1;  // crash / recover / straggler / memo loss
  double factor = 1.0;     // straggler slowdown
  // Pre-drawn random bits for at-rest corruption targeting (which replica,
  // segment, byte, bit) — resolved against the actual files at apply time,
  // since segments do not exist yet when the schedule is generated.
  std::uint64_t entropy = 0;
};

struct ChaosOptions {
  // Events are drawn in [0.02, 0.95) * horizon; callers size the horizon
  // to roughly the simulated duration of the run under test.
  SimDuration horizon = 100.0;
  int crash_events = 2;
  int straggler_events = 2;
  int memo_loss_events = 1;
  int durable_error_events = 1;
  // At-rest corruption (both default 0 so existing seeds replay
  // bit-identically): bit rot flips one bit in a random flushed segment
  // record; replica divergence truncates one replica's newest record at a
  // frame boundary. Both are detected and healed by the integrity
  // scrubber (durability/scrubber.h).
  int bit_rot_events = 0;
  int replica_divergence_events = 0;
  // Probability that a given (task, attempt, machine) draw fails. The
  // draw is a pure hash of the seed and its arguments — no RNG state.
  double attempt_failure_prob = 0.02;
  // Liveness floor: a crash is only scheduled while it leaves at least
  // this many machines alive.
  int min_live_machines = 2;
  // Machine 0 never crashes: a stable anchor that guarantees every final
  // task attempt has a slot that cannot die under it.
  bool protect_machine0 = true;
  // Attempt / retry knobs forwarded into every StageFaultPlan.
  int max_attempts = 4;
  SimDuration backoff_base = 0.05;
  int blacklist_threshold = 3;
};

// Immutable, sorted chaos event timeline.
class ChaosSchedule {
 public:
  static ChaosSchedule generate(std::uint64_t seed, const ChaosOptions& options,
                                int num_machines);

  const std::vector<ChaosEvent>& events() const { return events_; }
  std::uint64_t seed() const { return seed_; }
  const ChaosOptions& options() const { return options_; }
  std::string to_string() const;  // one line per event, for logs

 private:
  std::uint64_t seed_ = 0;
  ChaosOptions options_;
  std::vector<ChaosEvent> events_;  // sorted by `at`, ties in draw order
};

// What the controller is allowed to break. Only `cluster` is required;
// null members simply skip the corresponding event effects.
struct ChaosTargets {
  Cluster* cluster = nullptr;
  MemoStore* memo = nullptr;
  durability::DurableTier* durable = nullptr;
};

// Applies a ChaosSchedule to a live system as simulated time advances, and
// serves per-stage fault plans to the stage simulator.
class ChaosController final : public StageFaultProvider {
 public:
  ChaosController(ChaosSchedule schedule, ChaosTargets targets);
  ~ChaosController() override;

  ChaosController(const ChaosController&) = delete;
  ChaosController& operator=(const ChaosController&) = delete;

  // Applies every not-yet-applied event with at <= now. Called at slide
  // boundaries (mid-stage effects are handled by the fault plans below).
  // Returns the number of events applied.
  std::size_t apply_until(SimDuration now);

  // StageFaultProvider: currently-failed machines, all future crash
  // events translated to stage-relative time (crashes beyond the stage's
  // makespan simply never trigger), and the deterministic injected
  // attempt-failure draw.
  StageFaultPlan stage_faults(SimDuration stage_start) const override;

  SimDuration now() const { return now_; }
  const ChaosSchedule& schedule() const { return schedule_; }
  bool exhausted() const { return next_event_ >= schedule_.events().size(); }

  struct Counters {
    std::uint64_t events_applied = 0;
    std::uint64_t crashes = 0;
    std::uint64_t recoveries = 0;
    std::uint64_t stragglers = 0;
    std::uint64_t memo_losses = 0;
    std::uint64_t durable_error_windows = 0;
    std::uint64_t bit_rots = 0;             // bits actually flipped on disk
    std::uint64_t replica_divergences = 0;  // records actually truncated
  };
  const Counters& counters() const { return counters_; }

 private:
  void apply(const ChaosEvent& event);

  // FaultInjector that rejects every write outright (clean failure, no
  // torn byte prefix beyond what the log frames itself).
  class RejectAllInjector final : public durability::FaultInjector {
   public:
    std::size_t admit(std::size_t) override { return 0; }
  };

  ChaosSchedule schedule_;
  ChaosTargets targets_;
  std::size_t next_event_ = 0;
  SimDuration now_ = 0;
  bool durable_error_active_ = false;
  Counters counters_;
  RejectAllInjector reject_all_;
};

}  // namespace slider::robustness
