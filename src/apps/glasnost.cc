#include "apps/glasnost.h"

#include <charconv>
#include <cstdio>

#include "apps/codecs.h"
#include "common/string_util.h"

namespace slider::apps {
namespace {

class GlasnostMapper final : public Mapper {
 public:
  explicit GlasnostMapper(double bucket_ms) : bucket_ms_(bucket_ms) {}

  void map(const Record& input, Emitter& out) const override {
    // value = "server_id,rtt1|rtt2|..."
    const auto comma = input.value.find(',');
    if (comma == std::string::npos) return;
    const std::string server = input.value.substr(0, comma);
    double min_rtt = -1;
    for (const auto sample :
         split_view(std::string_view(input.value).substr(comma + 1), '|')) {
      double rtt = 0;
      std::from_chars(sample.data(), sample.data() + sample.size(), rtt);
      if (min_rtt < 0 || rtt < min_rtt) min_rtt = rtt;
    }
    if (min_rtt < 0) return;
    const auto bucket = static_cast<std::uint32_t>(min_rtt / bucket_ms_);
    out.emit("srv" + server, encode_histogram({{bucket, 1}}));
  }

 private:
  double bucket_ms_;
};

}  // namespace

JobSpec make_glasnost_job(const GlasnostOptions& options) {
  JobSpec job;
  job.name = "glasnost-monitor";
  job.mapper = std::make_shared<GlasnostMapper>(options.bucket_ms);
  job.combiner = [](const std::string&, const std::string& a,
                    const std::string& b) {
    return encode_histogram(
        add_histograms(decode_histogram(a), decode_histogram(b)));
  };
  // Bucket-wise integer addition; multi-bucket encoding, no flat kernel.
  job.traits.commutative = true;
  job.traits.invertible = true;
  job.traits.exactly_associative = true;
  const double bucket_ms = options.bucket_ms;
  job.reducer = [bucket_ms](
                    const std::string&,
                    const std::string& combined) -> std::optional<std::string> {
    const Histogram h = decode_histogram(combined);
    std::uint64_t tests = 0;
    for (const auto& [bucket, count] : h) tests += count;
    const double median_ms =
        (static_cast<double>(histogram_quantile(h, 0.5)) + 0.5) * bucket_ms;
    char buf[64];
    std::snprintf(buf, sizeof(buf), "median_min_rtt_ms=%.1f,tests=%llu",
                  median_ms, static_cast<unsigned long long>(tests));
    return std::string(buf);
  };
  job.num_partitions = options.num_partitions;
  job.costs.map_cpu_per_record = 4.0e-6;  // parse a whole packet trace
  job.costs.map_cpu_per_byte = 6.0e-9;
  job.costs.combine_cpu_per_row = 3.0e-7;
  job.costs.reduce_cpu_per_row = 1.0e-6;
  return job;
}

GlasnostGenerator::GlasnostGenerator(GlasnostGenOptions options)
    : options_(options), rng_(options.seed) {
  server_base_ms_.resize(static_cast<std::size_t>(options.servers));
  for (double& base : server_base_ms_) {
    base = options_.base_rtt_ms + rng_.next_double() * options_.rtt_spread_ms;
  }
}

std::vector<Record> GlasnostGenerator::next_month(std::size_t tests) {
  std::vector<Record> month;
  month.reserve(tests);
  char buf[32];
  for (std::size_t t = 0; t < tests; ++t) {
    const std::size_t server = rng_.next_below(server_base_ms_.size());
    std::string value = std::to_string(server) + ",";
    for (int s = 0; s < options_.samples_per_test; ++s) {
      // Noise is strictly additive: the minimum approximates the true
      // distance, as with real queueing delay.
      double rtt = server_base_ms_[server] +
                   rng_.next_double() * options_.noise_ms;
      if (rng_.next_bool(0.02)) rtt += 200.0 * rng_.next_double();  // outlier
      std::snprintf(buf, sizeof(buf), "%.2f", rtt);
      if (s != 0) value.push_back('|');
      value += buf;
    }
    month.push_back({zero_pad(next_test_++, 10), std::move(value)});
  }
  return month;
}

}  // namespace slider::apps
