#include "apps/substr.h"

#include "apps/codecs.h"
#include "common/string_util.h"

namespace slider::apps {
namespace {

class SubstrMapper final : public Mapper {
 public:
  SubstrMapper(int min_len, int max_len)
      : min_len_(static_cast<std::size_t>(min_len)),
        max_len_(static_cast<std::size_t>(max_len)) {}

  void map(const Record& input, Emitter& out) const override {
    for (const auto word : split_view(input.value, ' ')) {
      for (std::size_t len = min_len_; len <= max_len_; ++len) {
        if (word.size() < len) break;
        for (std::size_t pos = 0; pos + len <= word.size(); ++pos) {
          out.emit(std::string(word.substr(pos, len)), "1");
        }
      }
    }
  }

 private:
  std::size_t min_len_;
  std::size_t max_len_;
};

}  // namespace

JobSpec make_substr_job(const SubstrOptions& options) {
  JobSpec job;
  job.name = "substr";
  job.mapper = std::make_shared<SubstrMapper>(options.min_len, options.max_len);
  job.combiner = [](const std::string&, const std::string& a,
                    const std::string& b) {
    return encode_count(decode_count(a) + decode_count(b));
  };
  // Unsigned decimal count sum: the textbook flat-tier kernel.
  job.traits.commutative = true;
  job.traits.invertible = true;
  job.traits.exactly_associative = true;
  job.traits.flat_kernel = FlatKernel::kSumU64;
  const std::uint64_t threshold = options.frequency_threshold;
  job.reducer = [threshold](
                    const std::string&,
                    const std::string& combined) -> std::optional<std::string> {
    const std::uint64_t count = decode_count(combined);
    if (count < threshold) return std::nullopt;  // drop infrequent n-grams
    return encode_count(count);
  };
  job.num_partitions = options.num_partitions;
  job.costs.map_cpu_per_record = 2.5e-6;
  job.costs.map_cpu_per_byte = 8.0e-9;
  job.costs.combine_cpu_per_row = 3.0e-7;
  job.costs.reduce_cpu_per_row = 9.0e-7;
  return job;
}

}  // namespace slider::apps
