#include "apps/codecs.h"

#include <algorithm>
#include <charconv>
#include <cstdio>

#include "common/logging.h"
#include "common/string_util.h"

namespace slider::apps {
namespace {

double parse_double(std::string_view text) {
  double value = 0;
  std::from_chars(text.data(), text.data() + text.size(), value);
  return value;
}

std::string format_compact_double(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

std::uint64_t decode_count(const std::string& value) {
  std::uint64_t count = 0;
  SLIDER_CHECK(parse_u64(value, &count)) << "bad count value: " << value;
  return count;
}

std::string encode_count(std::uint64_t value) { return std::to_string(value); }

std::string encode_vector_sum(const VectorSum& v) {
  std::string out = std::to_string(v.count);
  for (const std::int64_t d : v.sum_micro) {
    out.push_back('|');
    out += std::to_string(d);
  }
  return out;
}

std::optional<VectorSum> decode_vector_sum(const std::string& value) {
  const auto parts = split_view(value, '|');
  if (parts.empty()) return std::nullopt;
  VectorSum v;
  if (!parse_u64(parts[0], &v.count)) return std::nullopt;
  v.sum_micro.reserve(parts.size() - 1);
  for (std::size_t i = 1; i < parts.size(); ++i) {
    std::int64_t coord = 0;
    std::string_view text = parts[i];
    bool negative = false;
    if (!text.empty() && text[0] == '-') {
      negative = true;
      text.remove_prefix(1);
    }
    std::uint64_t magnitude = 0;
    if (!parse_u64(text, &magnitude)) return std::nullopt;
    coord = static_cast<std::int64_t>(magnitude);
    v.sum_micro.push_back(negative ? -coord : coord);
  }
  return v;
}

VectorSum add_vector_sums(const VectorSum& a, const VectorSum& b) {
  if (a.sum_micro.empty()) return b;
  if (b.sum_micro.empty()) return a;
  SLIDER_CHECK(a.sum_micro.size() == b.sum_micro.size())
      << "vector dimension mismatch";
  VectorSum out;
  out.count = a.count + b.count;
  out.sum_micro.resize(a.sum_micro.size());
  for (std::size_t i = 0; i < a.sum_micro.size(); ++i) {
    out.sum_micro[i] = a.sum_micro[i] + b.sum_micro[i];
  }
  return out;
}

std::string encode_histogram(const Histogram& h) {
  std::string out;
  for (const auto& [bucket, count] : h) {
    if (!out.empty()) out.push_back(',');
    out += std::to_string(bucket);
    out.push_back(':');
    out += std::to_string(count);
  }
  return out;
}

Histogram decode_histogram(const std::string& value) {
  Histogram h;
  if (value.empty()) return h;
  for (const auto entry : split_view(value, ',')) {
    const auto pos = entry.find(':');
    SLIDER_CHECK(pos != std::string_view::npos) << "bad histogram: " << value;
    std::uint64_t bucket = 0;
    std::uint64_t count = 0;
    SLIDER_CHECK(parse_u64(entry.substr(0, pos), &bucket) &&
                 parse_u64(entry.substr(pos + 1), &count))
        << "bad histogram entry";
    h.emplace_back(static_cast<std::uint32_t>(bucket), count);
  }
  return h;
}

Histogram add_histograms(const Histogram& a, const Histogram& b) {
  Histogram out;
  out.reserve(a.size() + b.size());
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i].first < b[j].first) {
      out.push_back(a[i++]);
    } else if (b[j].first < a[i].first) {
      out.push_back(b[j++]);
    } else {
      out.emplace_back(a[i].first, a[i].second + b[j].second);
      ++i;
      ++j;
    }
  }
  out.insert(out.end(), a.begin() + static_cast<std::ptrdiff_t>(i), a.end());
  out.insert(out.end(), b.begin() + static_cast<std::ptrdiff_t>(j), b.end());
  return out;
}

std::uint32_t histogram_quantile(const Histogram& h, double quantile) {
  std::uint64_t total = 0;
  for (const auto& [bucket, count] : h) total += count;
  if (total == 0) return 0;
  const auto target =
      static_cast<std::uint64_t>(quantile * static_cast<double>(total));
  std::uint64_t seen = 0;
  for (const auto& [bucket, count] : h) {
    seen += count;
    if (seen > target) return bucket;
  }
  return h.back().first;
}

std::string encode_topk(const std::vector<ScoredTag>& entries) {
  std::string out;
  for (const ScoredTag& e : entries) {
    if (!out.empty()) out.push_back(';');
    out += format_compact_double(e.score);
    out.push_back('@');
    out += e.tag;
  }
  return out;
}

std::vector<ScoredTag> decode_topk(const std::string& value) {
  std::vector<ScoredTag> entries;
  if (value.empty()) return entries;
  for (const auto part : split_view(value, ';')) {
    const auto pos = part.find('@');
    SLIDER_CHECK(pos != std::string_view::npos) << "bad topk: " << value;
    entries.push_back(ScoredTag{parse_double(part.substr(0, pos)),
                                std::string(part.substr(pos + 1))});
  }
  return entries;
}

std::vector<ScoredTag> merge_topk(const std::vector<ScoredTag>& a,
                                  const std::vector<ScoredTag>& b,
                                  std::size_t k) {
  std::vector<ScoredTag> out;
  out.reserve(a.size() + b.size());
  out.insert(out.end(), a.begin(), a.end());
  out.insert(out.end(), b.begin(), b.end());
  std::sort(out.begin(), out.end(), [](const ScoredTag& x, const ScoredTag& y) {
    if (x.score != y.score) return x.score < y.score;
    return x.tag < y.tag;
  });
  if (out.size() > k) out.resize(k);
  return out;
}

std::string encode_events(const std::vector<Event>& events) {
  std::string out;
  for (const Event& e : events) {
    if (!out.empty()) out.push_back(';');
    out += std::to_string(e.time);
    out.push_back(':');
    out += e.tag;
  }
  return out;
}

std::vector<Event> decode_events(const std::string& value) {
  std::vector<Event> events;
  if (value.empty()) return events;
  for (const auto part : split_view(value, ';')) {
    const auto pos = part.find(':');
    SLIDER_CHECK(pos != std::string_view::npos) << "bad events: " << value;
    Event e;
    SLIDER_CHECK(parse_u64(part.substr(0, pos), &e.time)) << "bad event time";
    e.tag = std::string(part.substr(pos + 1));
    events.push_back(std::move(e));
  }
  return events;
}

std::vector<Event> merge_events(const std::vector<Event>& a,
                                const std::vector<Event>& b) {
  std::vector<Event> out;
  out.reserve(a.size() + b.size());
  std::merge(a.begin(), a.end(), b.begin(), b.end(), std::back_inserter(out),
             [](const Event& x, const Event& y) {
               if (x.time != y.time) return x.time < y.time;
               return x.tag < y.tag;
             });
  return out;
}

std::string encode_audit(const AuditCounters& c) {
  return std::to_string(c.chunks_served) + "," + std::to_string(c.bytes_up) +
         "," + std::to_string(c.bytes_down) + "," +
         std::to_string(c.violations);
}

std::optional<AuditCounters> decode_audit(const std::string& value) {
  const auto parts = split_view(value, ',');
  if (parts.size() != 4) return std::nullopt;
  AuditCounters c;
  if (!parse_u64(parts[0], &c.chunks_served) ||
      !parse_u64(parts[1], &c.bytes_up) ||
      !parse_u64(parts[2], &c.bytes_down) ||
      !parse_u64(parts[3], &c.violations)) {
    return std::nullopt;
  }
  return c;
}

AuditCounters add_audit(const AuditCounters& a, const AuditCounters& b) {
  return AuditCounters{a.chunks_served + b.chunks_served,
                       a.bytes_up + b.bytes_up, a.bytes_down + b.bytes_down,
                       a.violations + b.violations};
}

}  // namespace slider::apps
