#include "apps/kmeans.h"

#include <charconv>
#include <cmath>
#include <cstdio>

#include "apps/codecs.h"
#include "common/string_util.h"

namespace slider::apps {
namespace {

std::vector<double> parse_point(std::string_view text) {
  std::vector<double> point;
  for (const auto part : split_view(text, '|')) {
    double v = 0;
    std::from_chars(part.data(), part.data() + part.size(), v);
    point.push_back(v);
  }
  return point;
}

std::vector<std::vector<double>> seeded_centroids(int k, int dims,
                                                  std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<double>> centroids(static_cast<std::size_t>(k));
  for (auto& c : centroids) {
    c.resize(static_cast<std::size_t>(dims));
    for (double& v : c) v = rng.next_double();
  }
  return centroids;
}

class KMeansMapper final : public Mapper {
 public:
  KMeansMapper(int k, int dims, std::uint64_t seed)
      : centroids_(seeded_centroids(k, dims, seed)) {}

  void map(const Record& input, Emitter& out) const override {
    const std::vector<double> point = parse_point(input.value);
    if (point.empty()) return;
    std::size_t best = 0;
    double best_dist = distance2(point, centroids_[0]);
    for (std::size_t c = 1; c < centroids_.size(); ++c) {
      const double d = distance2(point, centroids_[c]);
      if (d < best_dist) {
        best_dist = d;
        best = c;
      }
    }
    VectorSum partial;
    partial.sum_micro.reserve(point.size());
    for (const double v : point) {
      partial.sum_micro.push_back(
          static_cast<std::int64_t>(std::llround(v * kMicro)));
    }
    partial.count = 1;
    out.emit("c" + zero_pad(best, 3), encode_vector_sum(partial));
  }

 private:
  static double distance2(const std::vector<double>& a,
                          const std::vector<double>& b) {
    double total = 0;
    const std::size_t n = std::min(a.size(), b.size());
    for (std::size_t i = 0; i < n; ++i) {
      const double d = a[i] - b[i];
      total += d * d;
    }
    return total;
  }

  std::vector<std::vector<double>> centroids_;
};

}  // namespace

JobSpec make_kmeans_job(const KMeansOptions& options) {
  JobSpec job;
  job.name = "kmeans";
  job.mapper = std::make_shared<KMeansMapper>(options.k, options.dims,
                                              options.centroid_seed);
  job.combiner = [](const std::string&, const std::string& a,
                    const std::string& b) {
    const auto va = decode_vector_sum(a);
    const auto vb = decode_vector_sum(b);
    return encode_vector_sum(add_vector_sums(*va, *vb));
  };
  // Component-wise fixed-point addition (i64 micro-units, see codecs.h):
  // exact algebra, but multi-component — no single fixed-width lane.
  job.traits.commutative = true;
  job.traits.invertible = true;
  job.traits.exactly_associative = true;
  job.reducer = [](const std::string&,
                   const std::string& combined) -> std::optional<std::string> {
    const auto v = decode_vector_sum(combined);
    if (!v.has_value() || v->count == 0) return std::nullopt;
    std::string centroid;
    for (const std::int64_t d : v->sum_micro) {
      // Exact integer division keeps the output independent of any float
      // rounding mode: micro-units per count, truncated.
      if (!centroid.empty()) centroid.push_back('|');
      centroid += std::to_string(d / static_cast<std::int64_t>(v->count));
    }
    return centroid + "#n=" + std::to_string(v->count);
  };
  job.num_partitions = options.num_partitions;
  // Compute-intensive: K × dim distance evaluations per record dominate
  // (~98% of the job in the Map phase, per Fig 9's "H" bars).
  job.costs.map_cpu_per_record = 1.2e-4;
  job.costs.map_cpu_per_byte = 0.0;
  job.costs.combine_cpu_per_row = 8.0e-7;  // vector adds are pricier rows
  job.costs.reduce_cpu_per_row = 1.0e-6;
  return job;
}

std::vector<Record> generate_points(std::size_t count, int dims, Rng& rng,
                                    std::uint64_t first_id) {
  std::vector<Record> records;
  records.reserve(count);
  char buf[32];
  for (std::size_t i = 0; i < count; ++i) {
    std::string value;
    value.reserve(static_cast<std::size_t>(dims) * 9);
    for (int d = 0; d < dims; ++d) {
      std::snprintf(buf, sizeof(buf), "%.6f", rng.next_double());
      if (d != 0) value.push_back('|');
      value += buf;
    }
    records.push_back({zero_pad(first_id + i, 10), std::move(value)});
  }
  return records;
}

}  // namespace slider::apps
