// KNN — K-nearest neighbors (paper §7.1, compute-intensive).
//
// A fixed set of query points is broadcast to every mapper; each input
// point contributes its distance to every query, and the combiner keeps
// the k smallest distances per query (a bounded top-k merge, associative
// and commutative). The Reduce emits each query's neighbor list.
#pragma once

#include "common/rng.h"
#include "mapreduce/api.h"

namespace slider::apps {

struct KnnOptions {
  int k = 8;              // neighbors to keep
  int queries = 24;       // broadcast query points
  int dims = 50;
  std::uint64_t query_seed = 7;
  int num_partitions = 4;
};

JobSpec make_knn_job(const KnnOptions& options = {});

}  // namespace slider::apps
