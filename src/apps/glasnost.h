// Case study 2 (paper §8.2): monitoring Glasnost measurement servers —
// fixed-width windowing (3-month window sliding by one month).
//
// The paper computes, per measurement server, the median across users of
// the minimum RTT between the user and the server, from stored packet
// traces. We substitute a synthetic trace generator: each test run is a
// burst of RTT samples around a per-server base distance with noise and
// occasional outliers. The Map extracts the per-test minimum RTT; the
// Combiner aggregates fixed-bucket RTT histograms (associative and
// commutative); the Reduce reads the median off the histogram.
#pragma once

#include <vector>

#include "common/rng.h"
#include "data/record.h"
#include "mapreduce/api.h"

namespace slider::apps {

struct GlasnostOptions {
  int num_partitions = 4;
  double bucket_ms = 2.0;  // histogram bucket width
};

JobSpec make_glasnost_job(const GlasnostOptions& options = {});

struct GlasnostGenOptions {
  int servers = 8;
  int samples_per_test = 20;
  double base_rtt_ms = 10.0;
  double rtt_spread_ms = 120.0;  // server base RTTs span this range
  double noise_ms = 15.0;
  std::uint64_t seed = 2011;
};

// One record per test run: key = zero-padded test id, value =
// "server_id,rtt1|rtt2|...".
class GlasnostGenerator {
 public:
  explicit GlasnostGenerator(GlasnostGenOptions options = {});

  // One month of test runs.
  std::vector<Record> next_month(std::size_t tests);

 private:
  GlasnostGenOptions options_;
  Rng rng_;
  std::uint64_t next_test_ = 0;
  std::vector<double> server_base_ms_;
};

}  // namespace slider::apps
