// HCT — histogram-based computation (paper §7.1, data-intensive).
//
// Computes, per vocabulary word, a histogram of the positions (document
// deciles) at which the word occurs. Input records are (doc id, document
// text); the intermediate state is one histogram per distinct word, which
// is what makes this benchmark data-intensive.
#pragma once

#include "mapreduce/api.h"

namespace slider::apps {

struct HistogramOptions {
  int buckets = 8;  // position buckets per word histogram
  int num_partitions = 8;
};

JobSpec make_histogram_job(const HistogramOptions& options = {});

}  // namespace slider::apps
