// subStr — frequently occurring sub-strings (paper §7.1, data-intensive).
//
// Counts every character n-gram (length range configurable) over the word
// stream and keeps only n-grams above a frequency threshold.
#pragma once

#include "mapreduce/api.h"

namespace slider::apps {

struct SubstrOptions {
  int min_len = 3;
  int max_len = 4;
  std::uint64_t frequency_threshold = 5;
  int num_partitions = 8;
};

JobSpec make_substr_job(const SubstrOptions& options = {});

}  // namespace slider::apps
