// Case study 3 (paper §8.3): client accountability in Akamai NetSession —
// variable-width windowing.
//
// In the hybrid CDN, untrusted clients upload tamper-evident logs that
// servers audit periodically (PeerReview-style). The window covers one
// month of logs and slides by one week, but only a varying fraction of
// clients is online to upload each week — so the window's size varies run
// to run, the paper's motivating variable-width workload. We substitute a
// synthetic log generator parameterized by the upload fraction; the audit
// checks per-client counter consistency and flags violations.
#pragma once

#include <vector>

#include "common/rng.h"
#include "data/record.h"
#include "mapreduce/api.h"

namespace slider::apps {

struct NetSessionOptions {
  int num_partitions = 8;
  // Flag clients whose served-chunk count mismatches credited bytes by
  // more than this factor (simplified PeerReview consistency check).
  double mismatch_factor = 1.5;
};

JobSpec make_netsession_job(const NetSessionOptions& options = {});

struct NetSessionGenOptions {
  std::uint64_t clients = 2'000;
  std::uint64_t entries_per_log = 6;
  double violation_rate = 0.01;
  std::uint64_t chunk_bytes = 64 * 1024;
  std::uint64_t seed = 2010;
};

// One record per uploaded log entry: key = zero-padded sequence number,
// value = "client_id,chunks,up_bytes,down_bytes,violation_bit".
class NetSessionGenerator {
 public:
  explicit NetSessionGenerator(NetSessionGenOptions options = {});

  // One week of uploads; only `upload_fraction` of clients are online.
  std::vector<Record> next_week(double upload_fraction);

 private:
  NetSessionGenOptions options_;
  Rng rng_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace slider::apps
