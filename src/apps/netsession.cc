#include "apps/netsession.h"

#include "apps/codecs.h"
#include "common/string_util.h"

namespace slider::apps {
namespace {

class NetSessionMapper final : public Mapper {
 public:
  void map(const Record& input, Emitter& out) const override {
    // value = "client,chunks,up,down,violation"
    const auto parts = split_view(input.value, ',');
    if (parts.size() != 5) return;
    AuditCounters counters;
    if (!parse_u64(parts[1], &counters.chunks_served) ||
        !parse_u64(parts[2], &counters.bytes_up) ||
        !parse_u64(parts[3], &counters.bytes_down) ||
        !parse_u64(parts[4], &counters.violations)) {
      return;
    }
    out.emit("client" + std::string(parts[0]), encode_audit(counters));
  }
};

}  // namespace

JobSpec make_netsession_job(const NetSessionOptions& options) {
  JobSpec job;
  job.name = "netsession-audit";
  job.mapper = std::make_shared<NetSessionMapper>();
  job.combiner = [](const std::string&, const std::string& a,
                    const std::string& b) {
    const auto ca = decode_audit(a);
    const auto cb = decode_audit(b);
    return encode_audit(add_audit(*ca, *cb));
  };
  // Field-wise counter addition; multi-field encoding, no flat kernel.
  job.traits.commutative = true;
  job.traits.invertible = true;
  job.traits.exactly_associative = true;
  const double mismatch = options.mismatch_factor;
  job.reducer = [mismatch](
                    const std::string&,
                    const std::string& combined) -> std::optional<std::string> {
    const auto c = decode_audit(combined);
    if (!c.has_value()) return std::nullopt;
    const double claimed =
        static_cast<double>(c->chunks_served) * 64.0 * 1024.0;
    const bool inconsistent =
        c->bytes_up > 0 && claimed > mismatch * static_cast<double>(c->bytes_up);
    const bool flagged = c->violations > 0 || inconsistent;
    return std::string(flagged ? "flagged" : "ok") +
           ",chunks=" + std::to_string(c->chunks_served) +
           ",up=" + std::to_string(c->bytes_up) +
           ",violations=" + std::to_string(c->violations);
  };
  job.num_partitions = options.num_partitions;
  job.costs.map_cpu_per_record = 3.0e-6;  // log-entry hash-chain check
  job.costs.map_cpu_per_byte = 5.0e-9;
  job.costs.combine_cpu_per_row = 3.0e-7;
  job.costs.reduce_cpu_per_row = 1.0e-6;
  return job;
}

NetSessionGenerator::NetSessionGenerator(NetSessionGenOptions options)
    : options_(options), rng_(options.seed) {}

std::vector<Record> NetSessionGenerator::next_week(double upload_fraction) {
  std::vector<Record> week;
  for (std::uint64_t client = 0; client < options_.clients; ++client) {
    if (!rng_.next_bool(upload_fraction)) continue;
    for (std::uint64_t e = 0; e < options_.entries_per_log; ++e) {
      const std::uint64_t chunks = 1 + rng_.next_below(50);
      const bool violates = rng_.next_bool(options_.violation_rate);
      // Honest clients report uploads matching served chunks; violators
      // under-report what they actually served (free-riding).
      const std::uint64_t up =
          chunks * options_.chunk_bytes / (violates ? 4 : 1);
      const std::uint64_t down =
          rng_.next_below(40) * options_.chunk_bytes;
      week.push_back({zero_pad(next_seq_++, 12),
                      std::to_string(client) + "," + std::to_string(chunks) +
                          "," + std::to_string(up) + "," +
                          std::to_string(down) + "," +
                          (violates ? "1" : "0")});
    }
  }
  return week;
}

}  // namespace slider::apps
