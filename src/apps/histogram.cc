#include "apps/histogram.h"

#include "apps/codecs.h"
#include "common/hash.h"
#include "common/string_util.h"

namespace slider::apps {
namespace {

class HistogramMapper final : public Mapper {
 public:
  explicit HistogramMapper(int buckets) : buckets_(buckets) {}

  void map(const Record& input, Emitter& out) const override {
    // Per-word histogram of the word's position bucket within its
    // document. The key space is the whole vocabulary, which is what
    // makes HCT data-intensive: the intermediate state is a histogram per
    // distinct word, not a handful of global buckets.
    const auto words = split_view(input.value, ' ');
    for (std::size_t i = 0; i < words.size(); ++i) {
      if (words[i].empty()) continue;
      const auto bucket = static_cast<std::uint32_t>(
          i * static_cast<std::size_t>(buckets_) / std::max<std::size_t>(
              1, words.size()));
      out.emit(std::string(words[i]), encode_histogram({{bucket, 1}}));
    }
  }

 private:
  int buckets_;
};

}  // namespace

JobSpec make_histogram_job(const HistogramOptions& options) {
  JobSpec job;
  job.name = "hct";
  job.mapper = std::make_shared<HistogramMapper>(options.buckets);
  job.combiner = [](const std::string&, const std::string& a,
                    const std::string& b) {
    return encode_histogram(
        add_histograms(decode_histogram(a), decode_histogram(b)));
  };
  // Bucket-wise integer addition: exact algebra, but the multi-bucket
  // encoding has no single fixed-width lane, so no flat kernel.
  job.traits.commutative = true;
  job.traits.invertible = true;
  job.traits.exactly_associative = true;
  job.reducer = [](const std::string&,
                   const std::string& combined) -> std::optional<std::string> {
    const Histogram h = decode_histogram(combined);
    std::uint64_t total = 0;
    for (const auto& [len, count] : h) total += count;
    return "total=" + std::to_string(total) +
           ",median_len=" + std::to_string(histogram_quantile(h, 0.5));
  };
  job.num_partitions = options.num_partitions;
  // Data-intensive profile: cheap per-record map, costs dominated by the
  // emitted volume and combiner merges.
  job.costs.map_cpu_per_record = 2.0e-6;
  job.costs.map_cpu_per_byte = 5.0e-9;
  job.costs.combine_cpu_per_row = 4.0e-7;
  job.costs.reduce_cpu_per_row = 1.0e-6;
  return job;
}

}  // namespace slider::apps
