#include "apps/twitter.h"

#include <algorithm>
#include <map>

#include "apps/codecs.h"
#include "common/string_util.h"

namespace slider::apps {
namespace {

class TwitterMapper final : public Mapper {
 public:
  void map(const Record& input, Emitter& out) const override {
    // value = "url,user,parent"
    const auto parts = split_view(input.value, ',');
    if (parts.size() != 3) return;
    std::uint64_t time = 0;
    if (!parse_u64(input.key, &time)) return;
    out.emit("url" + std::string(parts[0]),
             encode_events({Event{
                 time, std::string(parts[1]) + ">" + std::string(parts[2])}}));
  }
};

}  // namespace

JobSpec make_twitter_job(const TwitterOptions& options) {
  JobSpec job;
  job.name = "twitter-propagation";
  job.mapper = std::make_shared<TwitterMapper>();
  job.combiner = [](const std::string&, const std::string& a,
                    const std::string& b) {
    return encode_events(merge_events(decode_events(a), decode_events(b)));
  };
  // Time-ordered event-list merge: commutative (stable sort by timestamp)
  // and exact, but not invertible and not fixed-width.
  job.traits.commutative = true;
  job.traits.exactly_associative = true;
  job.reducer = [](const std::string&,
                   const std::string& combined) -> std::optional<std::string> {
    // Build the propagation tree: posting list is time-sorted, so a
    // parent's depth is known before its children post.
    const std::vector<Event> posts = decode_events(combined);
    std::map<std::string, int> depth;     // user -> depth in tree
    std::map<std::string, int> children;  // user -> fan-out
    int max_depth = 0;
    int max_fanout = 0;
    for (const Event& post : posts) {
      const auto sep = post.tag.find('>');
      if (sep == std::string::npos) continue;
      const std::string user = post.tag.substr(0, sep);
      const std::string parent = post.tag.substr(sep + 1);
      int d = 0;
      if (parent != "-") {
        const auto it = depth.find(parent);
        d = (it == depth.end() ? 0 : it->second) + 1;
        const int fanout = ++children[parent];
        max_fanout = std::max(max_fanout, fanout);
      }
      // Keep the earliest depth if a user posts the URL twice.
      depth.emplace(user, d);
      max_depth = std::max(max_depth, d);
    }
    return "nodes=" + std::to_string(depth.size()) +
           ",depth=" + std::to_string(max_depth) +
           ",max_fanout=" + std::to_string(max_fanout);
  };
  job.num_partitions = options.num_partitions;
  // Mixed profile: posting-list merges dominate for viral URLs.
  job.costs.map_cpu_per_record = 3.0e-6;
  job.costs.map_cpu_per_byte = 4.0e-9;
  job.costs.combine_cpu_per_row = 5.0e-7;
  job.costs.reduce_cpu_per_row = 1.2e-6;
  return job;
}

TwitterGenerator::TwitterGenerator(TwitterGenOptions options)
    : options_(options), rng_(options.seed) {}

std::vector<Record> TwitterGenerator::next_batch(std::size_t tweets) {
  std::vector<Record> batch;
  batch.reserve(tweets);
  for (std::size_t i = 0; i < tweets; ++i) {
    const bool extend_cascade =
        !cascades_.empty() && rng_.next_bool(options_.retweet_probability);
    if (extend_cascade) {
      Cascade& cascade =
          cascades_[rng_.next_below(cascades_.size())];
      // Hubs (low Zipf ranks) re-spread more: pick the parent among the
      // earliest posters with skew.
      const std::size_t parent_rank = static_cast<std::size_t>(rng_.next_zipf(
          cascade.posters.size(), options_.hub_exponent));
      const std::uint64_t parent = cascade.posters[parent_rank];
      const std::uint64_t user = rng_.next_below(options_.users);
      batch.push_back({zero_pad(next_time_++, 12),
                       std::to_string(cascade.url) + "," +
                           std::to_string(user) + "," +
                           std::to_string(parent)});
      if (cascade.posters.size() < options_.max_cascade) {
        cascade.posters.push_back(user);
      }
    } else {
      const std::uint64_t url = next_url_ < options_.urls
                                    ? next_url_++
                                    : rng_.next_below(options_.urls);
      const std::uint64_t user = rng_.next_below(options_.users);
      batch.push_back({zero_pad(next_time_++, 12),
                       std::to_string(url) + "," + std::to_string(user) +
                           ",-"});
      cascades_.push_back(Cascade{url, {user}});
      // Bound live-cascade state: retire the oldest beyond a few hundred.
      if (cascades_.size() > 512) cascades_.erase(cascades_.begin());
    }
  }
  return batch;
}

}  // namespace slider::apps
