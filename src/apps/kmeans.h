// K-Means clustering (paper §7.1, compute-intensive).
//
// One MapReduce job = one Lloyd iteration over the window: each point is
// assigned to its nearest centroid (the expensive part: K × dim distance
// evaluations per record) and the Reduce emits the re-estimated centroids.
// Input records are (point id, '|'-separated coordinates); points live in
// the 50-dimensional unit cube as in the paper.
#pragma once

#include <vector>

#include "common/rng.h"
#include "data/record.h"
#include "mapreduce/api.h"

namespace slider::apps {

struct KMeansOptions {
  int k = 16;
  int dims = 50;
  std::uint64_t centroid_seed = 42;
  int num_partitions = 4;
};

JobSpec make_kmeans_job(const KMeansOptions& options = {});

// Synthetic input: points drawn uniformly from the unit cube.
std::vector<Record> generate_points(std::size_t count, int dims, Rng& rng,
                                    std::uint64_t first_id = 0);

}  // namespace slider::apps
