#include "apps/cooccurrence.h"

#include "apps/codecs.h"
#include "common/string_util.h"

namespace slider::apps {
namespace {

class CooccurrenceMapper final : public Mapper {
 public:
  explicit CooccurrenceMapper(int neighbor_distance)
      : neighbor_distance_(neighbor_distance) {}

  void map(const Record& input, Emitter& out) const override {
    const auto words = split_view(input.value, ' ');
    for (std::size_t i = 0; i < words.size(); ++i) {
      if (words[i].empty()) continue;
      const std::size_t limit =
          std::min(words.size(), i + 1 + static_cast<std::size_t>(
                                             neighbor_distance_));
      for (std::size_t j = i + 1; j < limit; ++j) {
        if (words[j].empty()) continue;
        // Canonical cell order keeps the matrix symmetric-upper.
        const auto& row = words[i] < words[j] ? words[i] : words[j];
        const auto& col = words[i] < words[j] ? words[j] : words[i];
        out.emit(std::string(row) + ":" + std::string(col), "1");
      }
    }
  }

 private:
  int neighbor_distance_;
};

}  // namespace

JobSpec make_cooccurrence_job(const CooccurrenceOptions& options) {
  JobSpec job;
  job.name = "matrix";
  job.mapper = std::make_shared<CooccurrenceMapper>(options.neighbor_distance);
  job.combiner = [](const std::string&, const std::string& a,
                    const std::string& b) {
    return encode_count(decode_count(a) + decode_count(b));
  };
  // Per-cell count sum, same algebra as substr's.
  job.traits.commutative = true;
  job.traits.invertible = true;
  job.traits.exactly_associative = true;
  job.traits.flat_kernel = FlatKernel::kSumU64;
  job.reducer = [](const std::string&,
                   const std::string& combined) -> std::optional<std::string> {
    return combined;  // final count per matrix cell
  };
  job.num_partitions = options.num_partitions;
  // Data-intensive with the fattest intermediate state of the suite.
  job.costs.map_cpu_per_record = 3.0e-6;
  job.costs.map_cpu_per_byte = 6.0e-9;
  job.costs.combine_cpu_per_row = 3.0e-7;
  job.costs.reduce_cpu_per_row = 8.0e-7;
  return job;
}

}  // namespace slider::apps
