// Matrix — word co-occurrence matrix computation (paper §7.1,
// data-intensive, largest intermediate state: Fig 13c's 12× space
// overhead comes from this app).
//
// Emits one cell per adjacent word pair within a document; the output is
// the co-occurrence count matrix in (row:col, count) form.
#pragma once

#include "mapreduce/api.h"

namespace slider::apps {

struct CooccurrenceOptions {
  int num_partitions = 8;
  // Pairs further apart than this window are not counted.
  int neighbor_distance = 2;
};

JobSpec make_cooccurrence_job(const CooccurrenceOptions& options = {});

}  // namespace slider::apps
