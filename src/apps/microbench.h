// Registry of the paper's five micro-benchmark applications (§7.1) with
// their input generators, so benches and tests can sweep over them.
#pragma once

#include <string>
#include <vector>

#include "common/rng.h"
#include "data/record.h"
#include "mapreduce/api.h"

namespace slider::apps {

enum class MicroApp { kKMeans, kHct, kKnn, kMatrix, kSubStr };

struct MicroBenchmark {
  MicroApp app;
  std::string name;      // paper's name: K-Means, HCT, KNN, Matrix, subStr
  bool compute_intensive = false;
  JobSpec job;
};

// All five, in the order the paper lists them.
std::vector<MicroBenchmark> all_microbenchmarks();

MicroBenchmark make_microbenchmark(MicroApp app);

// Generates the right input kind for the app: 50-dim unit-cube points for
// K-Means/KNN, Zipfian text documents for HCT/Matrix/subStr.
std::vector<Record> generate_input(MicroApp app, std::size_t records, Rng& rng,
                                   std::uint64_t first_id = 0);

}  // namespace slider::apps
