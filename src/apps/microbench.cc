#include "apps/microbench.h"

#include "apps/cooccurrence.h"
#include "apps/histogram.h"
#include "apps/kmeans.h"
#include "apps/knn.h"
#include "apps/substr.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "data/text_gen.h"

namespace slider::apps {

MicroBenchmark make_microbenchmark(MicroApp app) {
  switch (app) {
    case MicroApp::kKMeans:
      return {app, "K-Means", /*compute_intensive=*/true, make_kmeans_job()};
    case MicroApp::kHct:
      return {app, "HCT", false, make_histogram_job()};
    case MicroApp::kKnn:
      return {app, "KNN", true, make_knn_job()};
    case MicroApp::kMatrix:
      return {app, "Matrix", false, make_cooccurrence_job()};
    case MicroApp::kSubStr:
      return {app, "subStr", false, make_substr_job()};
  }
  SLIDER_CHECK(false) << "unknown app";
  return {};
}

std::vector<MicroBenchmark> all_microbenchmarks() {
  return {make_microbenchmark(MicroApp::kKMeans),
          make_microbenchmark(MicroApp::kHct),
          make_microbenchmark(MicroApp::kKnn),
          make_microbenchmark(MicroApp::kMatrix),
          make_microbenchmark(MicroApp::kSubStr)};
}

std::vector<Record> generate_input(MicroApp app, std::size_t records, Rng& rng,
                                   std::uint64_t first_id) {
  switch (app) {
    case MicroApp::kKMeans:
    case MicroApp::kKnn:
      return generate_points(records, /*dims=*/50, rng, first_id);
    case MicroApp::kHct:
    case MicroApp::kMatrix:
    case MicroApp::kSubStr: {
      // A fresh generator seeded from the caller's stream keeps documents
      // deterministic per (seed, first_id) regardless of call order.
      TextGenOptions options;
      options.seed = rng.next_u64();
      TextGenerator gen(options);
      std::vector<Record> docs;
      docs.reserve(records);
      for (std::size_t i = 0; i < records; ++i) {
        docs.push_back({zero_pad(first_id + i, 10), gen.next_document()});
      }
      return docs;
    }
  }
  SLIDER_CHECK(false) << "unknown app";
  return {};
}

}  // namespace slider::apps
