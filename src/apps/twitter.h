// Case study 1 (paper §8.1): information propagation trees in Twitter —
// append-only windowing.
//
// The paper replays the 2009 Twitter snapshot and builds, per posted URL,
// a Krackhardt-style information-propagation tree (an edge from the
// spreader of a URL to each receiver who re-posts it). We substitute a
// synthetic preferential-attachment cascade generator: each URL starts at
// a seed user and spreads along follow edges over time; every (re)post
// record carries the user it was received from, exactly the information
// the propagation-tree analysis extracts from the real snapshot.
//
// MapReduce formulation: Map emits (url, [time:child>parent]); the
// Combiner merges time-sorted posting lists; Reduce walks each URL's
// posting list (parents precede children in time) and reports the tree's
// size, depth and maximum fan-out.
#pragma once

#include <vector>

#include "common/rng.h"
#include "data/record.h"
#include "mapreduce/api.h"

namespace slider::apps {

struct TwitterOptions {
  int num_partitions = 8;
};

JobSpec make_twitter_job(const TwitterOptions& options = {});

struct TwitterGenOptions {
  std::uint64_t users = 5'000;
  std::uint64_t urls = 200;
  // Cascade fan-out is Zipf-distributed over users (preferential
  // attachment): a few "hub" users spread to many followers.
  double hub_exponent = 1.2;
  double retweet_probability = 0.35;
  std::size_t max_cascade = 400;
  std::uint64_t seed = 2009;
};

// Tweet records ordered by time; key = zero-padded timestamp, value =
// "url,user,parent" (parent == "-" for the cascade root).
class TwitterGenerator {
 public:
  explicit TwitterGenerator(TwitterGenOptions options = {});

  // Next batch of tweets (one "week" of activity).
  std::vector<Record> next_batch(std::size_t tweets);

 private:
  TwitterGenOptions options_;
  Rng rng_;
  std::uint64_t next_time_ = 0;
  // Live cascades: url -> users who already posted it (spread frontier).
  struct Cascade {
    std::uint64_t url;
    std::vector<std::uint64_t> posters;
  };
  std::vector<Cascade> cascades_;
  std::uint64_t next_url_ = 0;
};

}  // namespace slider::apps
