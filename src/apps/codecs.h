// Value codecs shared by the applications.
//
// Map/Combine/Reduce exchange string values; the apps encode structured
// aggregates (vectors, histograms, top-k lists, counters) in compact text
// forms. Codecs live here so combiner associativity/commutativity can be
// tested independently of the apps.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace slider::apps {

// --- u64 counter ------------------------------------------------------------

std::uint64_t decode_count(const std::string& value);
std::string encode_count(std::uint64_t value);

// --- dense double vector + count (K-Means partial centroid) -----------------

// Coordinates are accumulated in fixed-point micro-units (1e-6) so that
// addition is exactly associative and commutative — merge order must not
// change the output (the trees merge in different orders than a linear
// scan).
struct VectorSum {
  std::vector<std::int64_t> sum_micro;
  std::uint64_t count = 0;
};

inline constexpr double kMicro = 1e6;

std::string encode_vector_sum(const VectorSum& v);
std::optional<VectorSum> decode_vector_sum(const std::string& value);
VectorSum add_vector_sums(const VectorSum& a, const VectorSum& b);

// --- sparse histogram (Glasnost RTT buckets, HCT) ----------------------------

// "bucket:count,bucket:count,..." with strictly increasing buckets.
using Histogram = std::vector<std::pair<std::uint32_t, std::uint64_t>>;

std::string encode_histogram(const Histogram& h);
Histogram decode_histogram(const std::string& value);
Histogram add_histograms(const Histogram& a, const Histogram& b);
// Value at the given cumulative quantile (0.5 = median), by bucket index.
std::uint32_t histogram_quantile(const Histogram& h, double quantile);

// --- bounded top-k list of (score, tag), smallest scores kept (KNN) ----------

struct ScoredTag {
  double score = 0;
  std::string tag;
};

std::string encode_topk(const std::vector<ScoredTag>& entries);
std::vector<ScoredTag> decode_topk(const std::string& value);
// Merge keeping the k smallest scores (ties broken by tag for determinism).
std::vector<ScoredTag> merge_topk(const std::vector<ScoredTag>& a,
                                  const std::vector<ScoredTag>& b,
                                  std::size_t k);

// --- sorted event list "time:tag;time:tag;..." (Twitter posting lists) -------

struct Event {
  std::uint64_t time = 0;
  std::string tag;
};

std::string encode_events(const std::vector<Event>& events);
std::vector<Event> decode_events(const std::string& value);
std::vector<Event> merge_events(const std::vector<Event>& a,
                                const std::vector<Event>& b);

// --- fixed named counters "a,b,c,d" (NetSession audit) ------------------------

struct AuditCounters {
  std::uint64_t chunks_served = 0;
  std::uint64_t bytes_up = 0;
  std::uint64_t bytes_down = 0;
  std::uint64_t violations = 0;
};

std::string encode_audit(const AuditCounters& c);
std::optional<AuditCounters> decode_audit(const std::string& value);
AuditCounters add_audit(const AuditCounters& a, const AuditCounters& b);

}  // namespace slider::apps
