#include "apps/knn.h"

#include <charconv>

#include "apps/codecs.h"
#include "common/string_util.h"

namespace slider::apps {
namespace {

class KnnMapper final : public Mapper {
 public:
  KnnMapper(int k, int queries, int dims, std::uint64_t seed)
      : k_(static_cast<std::size_t>(k)) {
    Rng rng(seed);
    queries_.resize(static_cast<std::size_t>(queries));
    for (auto& q : queries_) {
      q.resize(static_cast<std::size_t>(dims));
      for (double& v : q) v = rng.next_double();
    }
  }

  void map(const Record& input, Emitter& out) const override {
    std::vector<double> point;
    for (const auto part : split_view(input.value, '|')) {
      double v = 0;
      std::from_chars(part.data(), part.data() + part.size(), v);
      point.push_back(v);
    }
    if (point.empty()) return;
    for (std::size_t q = 0; q < queries_.size(); ++q) {
      double dist = 0;
      const std::size_t n = std::min(point.size(), queries_[q].size());
      for (std::size_t i = 0; i < n; ++i) {
        const double d = point[i] - queries_[q][i];
        dist += d * d;
      }
      out.emit("q" + zero_pad(q, 3),
               encode_topk({ScoredTag{dist, input.key}}));
    }
  }

  std::size_t k() const { return k_; }

 private:
  std::size_t k_;
  std::vector<std::vector<double>> queries_;
};

}  // namespace

JobSpec make_knn_job(const KnnOptions& options) {
  JobSpec job;
  job.name = "knn";
  job.mapper = std::make_shared<KnnMapper>(options.k, options.queries,
                                           options.dims, options.query_seed);
  const auto k = static_cast<std::size_t>(options.k);
  job.combiner = [k](const std::string&, const std::string& a,
                     const std::string& b) {
    return encode_topk(merge_topk(decode_topk(a), decode_topk(b), k));
  };
  // Top-k selection: commutative and exact, but dropping losers destroys
  // invertibility and there is no fixed-width lane.
  job.traits.commutative = true;
  job.traits.exactly_associative = true;
  job.reducer = [](const std::string&,
                   const std::string& combined) -> std::optional<std::string> {
    return combined;  // the final neighbor list
  };
  job.num_partitions = options.num_partitions;
  // Compute-intensive: queries × dims distance work per record.
  job.costs.map_cpu_per_record = 8.0e-5;
  job.costs.map_cpu_per_byte = 0.0;
  job.costs.combine_cpu_per_row = 1.0e-6;  // top-k merges per row
  job.costs.reduce_cpu_per_row = 1.0e-6;
  return job;
}

}  // namespace slider::apps
