#include "serving/session_manager.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <optional>
#include <unordered_set>
#include <utility>

#include "common/hash.h"
#include "common/logging.h"
#include "common/thread_pool.h"
#include "data/serde.h"
#include "durability/scrubber.h"
#include "observability/json_writer.h"
#include "observability/slo.h"

namespace slider::serving {
namespace {

// Tenant names become spool subdirectories; anything path-hostile maps to
// '_' and the salt suffix keeps sanitized collisions distinct.
std::string spool_component(const std::string& name, std::uint64_t salt) {
  std::string out;
  out.reserve(name.size() + 20);
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '-' || c == '_';
    out += ok ? c : '_';
  }
  out += '_';
  out += std::to_string(salt);
  return out;
}

std::string default_spool_dir() {
  static std::atomic<std::uint64_t> counter{0};
  const std::uint64_t n = counter.fetch_add(1, std::memory_order_relaxed);
  return (std::filesystem::temp_directory_path() /
          ("slider_serving_spool_" + std::to_string(::getpid()) + "_" +
           std::to_string(n)))
      .string();
}

std::vector<std::string> serialize_outputs(const SliderSession& session) {
  std::vector<std::string> out;
  out.reserve(session.output().size());
  for (const KVTable& table : session.output()) {
    out.push_back(serialize_table(table));
  }
  return out;
}

}  // namespace

SessionManager::SessionManager(const VanillaEngine& engine, MemoStore& memo,
                               SessionManagerOptions options)
    : engine_(&engine), memo_(&memo), options_(std::move(options)) {
  options_.shards = std::max<std::size_t>(1, options_.shards);
  options_.shed_watermark =
      std::max<std::size_t>(1, options_.shed_watermark);
  options_.queue_watermark =
      std::min(std::max<std::size_t>(1, options_.queue_watermark),
               options_.shed_watermark);
  if (options_.spool_dir.empty()) {
    options_.spool_dir = default_spool_dir();
    owns_spool_dir_ = true;
  }
  shards_.resize(options_.shards);
  if (options_.introspect_port >= 0) start_introspection();
}

SessionManager::~SessionManager() {
  introspect_.reset();  // handlers must die before the tenants they read
  // The pinned set exists for this manager's cold checkpoints; leaving it
  // behind would silently exempt ids from the store's eviction policies
  // for whoever uses the store next.
  memo_->set_pinned_ids(nullptr);
  if (owns_spool_dir_) {
    std::error_code ec;
    std::filesystem::remove_all(options_.spool_dir, ec);
  }
}

bool SessionManager::add_tenant(TenantSpec spec,
                                std::vector<SplitPtr> initial_splits) {
  if (spec.name.empty()) return false;
  auto state = std::make_unique<TenantState>();
  state->series.configure(options_.series_options);
  state->name = spec.name;
  state->salt = hash_string(spec.name);
  state->job = std::move(spec.job);
  state->config = std::move(spec.config);
  state->config.tenant = state->name;
  state->config.timeseries = &state->series;
  if (options_.record_provenance || state->config.record_provenance) {
    state->provenance =
        std::make_unique<obs::ProvenanceRecorder>(options_.provenance_options);
    state->config.record_provenance = true;
    state->config.provenance = state->provenance.get();
  }
  // GC over a shared store must see every tenant's live set at once; a
  // single session's GC would collect its neighbours (garbage_collect()).
  state->config.run_gc = false;
  state->config.introspect_port = -1;  // the manager owns the fleet endpoint
  state->spool_dir =
      (std::filesystem::path(options_.spool_dir) /
       spool_component(state->name, state->salt))
          .string();
  state->session = std::make_unique<SliderSession>(*engine_, *memo_,
                                                   state->job, state->config);
  Request initial;
  initial.initial = true;
  initial.splits = std::move(initial_splits);
  state->queue.push_back(std::move(initial));
  state->counters.submitted = 1;

  TenantState* raw = state.get();
  {
    std::unique_lock<std::shared_mutex> lock(registry_mutex_);
    if (!tenants_.emplace(raw->name, std::move(state)).second) return false;
    shards_[shard_of(*raw)].push_back(raw);
  }
  memo_->set_tenant_quota(raw->salt, spec.quota);
  total_pending_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

AdmitResult SessionManager::submit(const std::string& name,
                                   std::size_t remove_front,
                                   std::vector<SplitPtr> added) {
  std::shared_lock<std::shared_mutex> registry(registry_mutex_);
  const auto it = tenants_.find(name);
  if (it == tenants_.end()) return AdmitResult::kUnknownTenant;
  TenantState& state = *it->second;
  std::lock_guard<std::mutex> lock(state.mutex);
  if (state.unusable || state.queue.size() >= options_.shed_watermark) {
    ++state.counters.shed;
    return AdmitResult::kShed;
  }
  Request request;
  request.remove_front = remove_front;
  request.splits = std::move(added);
  state.queue.push_back(std::move(request));
  ++state.counters.submitted;
  total_pending_.fetch_add(1, std::memory_order_relaxed);
  if (state.queue.size() >= options_.queue_watermark) {
    ++state.counters.queued_over_watermark;
    return AdmitResult::kQueued;
  }
  return AdmitResult::kAccepted;
}

void SessionManager::execute_locked(TenantState& state, Request request) {
  if (request.initial) {
    state.session->initial_run(std::move(request.splits));
  } else {
    state.session->slide(request.remove_front, std::move(request.splits));
  }
  if (state.config.split_processing) state.session->run_background();
  ++state.counters.executed;
  state.idle_rounds = 0;
  state.window_splits = state.session->window().size();
  state.outputs = serialize_outputs(*state.session);
  total_pending_.fetch_sub(1, std::memory_order_relaxed);
}

bool SessionManager::hydrate_locked(TenantState& state) {
  auto fresh = std::make_unique<SliderSession>(*engine_, *memo_, state.job,
                                               state.config);
  if (!fresh->restore(state.spool_dir)) {
    SLIDER_LOG(Warning) << "tenant " << state.name
                        << ": hydrate failed, shedding its queue";
    ++state.counters.hydrate_failures;
    state.unusable = true;
    state.counters.shed += state.queue.size();
    total_pending_.fetch_sub(state.queue.size(), std::memory_order_relaxed);
    state.queue.clear();
    return false;
  }
  // The queued slides are new work, not a replay of pre-checkpoint runs —
  // bill them to their true causes.
  fresh->end_recovery_replay();
  state.session = std::move(fresh);
  state.cold = false;
  ++state.counters.hydrations;
  {
    std::lock_guard<std::mutex> cold(cold_mutex_);
    cold_ids_.erase(state.name);
    refresh_pinned_locked();
  }
  return true;
}

void SessionManager::checkpoint_locked(TenantState& state) {
  std::unordered_set<NodeId> live;
  state.session->collect_live_ids(live);
  if (!state.session->checkpoint(state.spool_dir)) {
    SLIDER_LOG(Warning) << "tenant " << state.name
                        << ": idle checkpoint failed; keeping the session hot";
    return;
  }
  {
    std::lock_guard<std::mutex> cold(cold_mutex_);
    cold_ids_[state.name] = std::move(live);
    refresh_pinned_locked();
  }
  state.session.reset();
  state.cold = true;
  state.idle_rounds = 0;
  ++state.counters.checkpoints;
}

void SessionManager::refresh_pinned_locked() {
  if (cold_ids_.empty()) {
    memo_->set_pinned_ids(nullptr);
    return;
  }
  auto pinned = std::make_shared<std::unordered_set<NodeId>>();
  for (const auto& [name, ids] : cold_ids_) {
    pinned->insert(ids.begin(), ids.end());
  }
  memo_->set_pinned_ids(std::move(pinned));
}

std::size_t SessionManager::run_pending() {
  std::lock_guard<std::mutex> drain(run_mutex_);
  std::vector<std::vector<TenantState*>> shards;
  {
    std::shared_lock<std::shared_mutex> registry(registry_mutex_);
    shards = shards_;  // stable pointers; new tenants wait for the next drain
  }
  std::atomic<std::size_t> executed{0};
  parallel_for(shards.size(), [&](std::size_t s) {
    std::unordered_set<TenantState*> ran;
    // Round-robin fairness: one request per tenant per cycle, so a
    // backlogged tenant interleaves with its shard-mates instead of
    // monopolizing the shard until its queue drains.
    bool progress = true;
    while (progress) {
      progress = false;
      for (TenantState* state : shards[s]) {
        std::lock_guard<std::mutex> lock(state->mutex);
        if (state->queue.empty() || state->unusable) continue;
        if (state->cold && !hydrate_locked(*state)) continue;
        Request request = std::move(state->queue.front());
        state->queue.pop_front();
        execute_locked(*state, std::move(request));
        ran.insert(state);
        executed.fetch_add(1, std::memory_order_relaxed);
        progress = true;
      }
    }
    if (options_.idle_checkpoint_rounds == 0) return;
    for (TenantState* state : shards[s]) {
      if (ran.count(state) != 0) continue;
      std::lock_guard<std::mutex> lock(state->mutex);
      if (state->session == nullptr || state->cold || state->unusable ||
          !state->queue.empty() || state->counters.executed == 0) {
        continue;
      }
      if (++state->idle_rounds >= options_.idle_checkpoint_rounds) {
        checkpoint_locked(*state);
      }
    }
  });
  if (options_.scrub_records_per_cycle > 0) {
    // Activity-proportional anti-entropy over the shared durable tier:
    // each executed run earns one scrub tranche (an idle cycle still gets
    // one), so fleets that append more at-rest state also verify it
    // proportionally faster.
    const std::uint64_t tranches =
        std::max<std::uint64_t>(1, executed.load(std::memory_order_relaxed));
    memo_->scrub_durable(options_.scrub_records_per_cycle * tranches);
  }
  if (options_.auto_gc) garbage_collect();
  return executed.load(std::memory_order_relaxed);
}

std::size_t SessionManager::garbage_collect() {
  std::shared_lock<std::shared_mutex> registry(registry_mutex_);
  if (tenants_.empty()) return 0;
  std::unordered_set<NodeId> live;
  for (const auto& [name, state] : tenants_) {
    std::lock_guard<std::mutex> lock(state->mutex);
    if (state->session != nullptr) state->session->collect_live_ids(live);
  }
  {
    std::lock_guard<std::mutex> cold(cold_mutex_);
    for (const auto& [name, ids] : cold_ids_) {
      live.insert(ids.begin(), ids.end());
    }
  }
  return memo_->retain_only(live);
}

std::size_t SessionManager::tenant_count() const {
  std::shared_lock<std::shared_mutex> registry(registry_mutex_);
  return tenants_.size();
}

TenantStatus SessionManager::status_of(const TenantState& state) const {
  TenantStatus status;
  status.name = state.name;
  std::lock_guard<std::mutex> lock(state.mutex);
  status.cold = state.cold;
  status.unusable = state.unusable;
  status.pending = state.queue.size();
  status.window_splits = state.window_splits;
  status.counters = state.counters;
  status.usage = memo_->tenant_usage(state.salt);
  if (state.session != nullptr) status.verdicts = state.session->slo_verdicts();
  return status;
}

TenantStatus SessionManager::status(const std::string& name) const {
  std::shared_lock<std::shared_mutex> registry(registry_mutex_);
  const auto it = tenants_.find(name);
  if (it == tenants_.end()) return TenantStatus{};
  return status_of(*it->second);
}

std::vector<TenantStatus> SessionManager::fleet_status() const {
  std::vector<TenantStatus> fleet;
  {
    std::shared_lock<std::shared_mutex> registry(registry_mutex_);
    fleet.reserve(tenants_.size());
    for (const auto& [name, state] : tenants_) {
      fleet.push_back(status_of(*state));
    }
  }
  std::sort(fleet.begin(), fleet.end(),
            [](const TenantStatus& a, const TenantStatus& b) {
              return a.name < b.name;
            });
  return fleet;
}

std::vector<std::string> SessionManager::last_outputs(
    const std::string& name) const {
  std::shared_lock<std::shared_mutex> registry(registry_mutex_);
  const auto it = tenants_.find(name);
  if (it == tenants_.end()) return {};
  std::lock_guard<std::mutex> lock(it->second->mutex);
  return it->second->outputs;
}

obs::TimeSeriesSnapshot SessionManager::tenant_series(
    const std::string& name) const {
  std::shared_lock<std::shared_mutex> registry(registry_mutex_);
  const auto it = tenants_.find(name);
  if (it == tenants_.end()) return obs::TimeSeriesSnapshot{};
  return it->second->series.snapshot();
}

const obs::ProvenanceRecorder* SessionManager::tenant_provenance(
    const std::string& name) const {
  std::shared_lock<std::shared_mutex> registry(registry_mutex_);
  const auto it = tenants_.find(name);
  if (it == tenants_.end()) return nullptr;
  return it->second->provenance.get();
}

bool SessionManager::is_cold(const std::string& name) const {
  std::shared_lock<std::shared_mutex> registry(registry_mutex_);
  const auto it = tenants_.find(name);
  if (it == tenants_.end()) return false;
  std::lock_guard<std::mutex> lock(it->second->mutex);
  return it->second->cold;
}

std::string SessionManager::healthz_json() const {
  const std::vector<TenantStatus> fleet = fleet_status();
  bool slo_failing = false;
  obs::JsonWriter json;
  json.begin_object();
  json.key("tenants").begin_array();
  for (const TenantStatus& t : fleet) {
    bool ok = true;
    for (const obs::SloVerdict& v : t.verdicts) ok = ok && v.ok;
    slo_failing = slo_failing || !ok || t.unusable;
    json.begin_object();
    json.key("tenant").value(t.name);
    json.key("cold").value(t.cold);
    json.key("ok").value(ok && !t.unusable);
    json.key("verdicts").raw(obs::slo_verdicts_to_json(t.verdicts));
    json.end_object();
  }
  json.end_array();
  const bool degraded = memo_->durable_degraded();
  json.key("durable_degraded").value(degraded);
  json.key("status").value(slo_failing ? "unhealthy"
                           : degraded  ? "degraded"
                                       : "ok");
  json.end_object();
  return json.take();
}

std::string SessionManager::tenants_json() const {
  const std::vector<TenantStatus> fleet = fleet_status();
  obs::JsonWriter json;
  json.begin_object();
  json.key("tenant_count").value(static_cast<std::uint64_t>(fleet.size()));
  json.key("total_pending").value(static_cast<std::uint64_t>(total_pending()));
  json.key("tenants").begin_array();
  for (const TenantStatus& t : fleet) {
    json.begin_object();
    json.key("tenant").value(t.name);
    json.key("cold").value(t.cold);
    json.key("unusable").value(t.unusable);
    json.key("pending").value(static_cast<std::uint64_t>(t.pending));
    json.key("window_splits")
        .value(static_cast<std::uint64_t>(t.window_splits));
    json.key("submitted").value(t.counters.submitted);
    json.key("executed").value(t.counters.executed);
    json.key("shed").value(t.counters.shed);
    json.key("queued_over_watermark").value(t.counters.queued_over_watermark);
    json.key("checkpoints").value(t.counters.checkpoints);
    json.key("hydrations").value(t.counters.hydrations);
    json.key("memo_bytes").value(t.usage.bytes);
    json.key("memo_entries").value(t.usage.entries);
    json.key("quota_evictions").value(t.usage.quota_evictions);
    json.key("quota_max_bytes").value(t.usage.quota_max_bytes);
    json.key("quota_max_entries").value(t.usage.quota_max_entries);
    json.end_object();
  }
  json.end_array();
  json.end_object();
  return json.take();
}

bool SessionManager::start_introspection() {
  if (options_.introspect_port < 0) return false;
  if (introspect_ != nullptr) return introspect_->running();
  obs::IntrospectionServer::Options server_options;
  server_options.port = static_cast<std::uint16_t>(options_.introspect_port);
  auto server = std::make_unique<obs::IntrospectionServer>(server_options);
  // Fleet-level overrides on top of the built-in routes (/metrics already
  // carries the {tenant="..."} ledger series from the global registries).
  server->add_route("/healthz", [this](const obs::HttpRequest&) {
    return obs::HttpResponse::json(healthz_json());
  });
  server->add_route("/tenants.json", [this](const obs::HttpRequest&) {
    return obs::HttpResponse::json(tenants_json());
  });
  server->add_route(
      "/timeseries.json", [this](const obs::HttpRequest& request) {
        const std::string tenant = request.query_param("tenant", "");
        if (tenant.empty()) {
          return obs::HttpResponse::json(obs::TimeSeries::global().to_json());
        }
        std::shared_lock<std::shared_mutex> registry(registry_mutex_);
        const auto it = tenants_.find(tenant);
        if (it == tenants_.end()) {
          return obs::HttpResponse::error(404, "no such tenant: " + tenant);
        }
        return obs::HttpResponse::json(it->second->series.to_json());
      });
  // Tenant-routed provenance drill-downs. Unlike the single-session
  // endpoint the fleet serves many recorders, so ?tenant= is mandatory.
  server->add_route("/explain", [this](const obs::HttpRequest& request) {
    const std::string tenant = request.query_param("tenant", "");
    if (tenant.empty()) {
      return obs::HttpResponse::error(400, "missing ?tenant=<name>");
    }
    const std::string key = request.query_param("key");
    if (key.empty()) {
      return obs::HttpResponse::error(400, "missing ?key=<reduce key>");
    }
    const std::string raw = request.query_param("partition", "0");
    char* end = nullptr;
    const long partition = std::strtol(raw.c_str(), &end, 10);
    if (end == nullptr || *end != '\0' || partition < 0) {
      return obs::HttpResponse::error(400, "bad partition '" + raw + "'");
    }
    std::optional<std::uint64_t> sequence;
    const std::string seq = request.query_param("sequence");
    if (!seq.empty()) sequence = std::strtoull(seq.c_str(), nullptr, 10);
    std::shared_lock<std::shared_mutex> registry(registry_mutex_);
    const auto it = tenants_.find(tenant);
    if (it == tenants_.end()) {
      return obs::HttpResponse::error(404, "no such tenant: " + tenant);
    }
    if (it->second->provenance == nullptr) {
      return obs::HttpResponse::error(
          404, "provenance recording is not enabled "
               "(SessionManagerOptions::record_provenance)");
    }
    return obs::HttpResponse::json(
        obs::explanation_to_json(it->second->provenance->explain(
            key, static_cast<int>(partition), sequence)));
  });
  server->add_route(
      "/criticalpath.json", [this](const obs::HttpRequest& request) {
        const std::string tenant = request.query_param("tenant", "");
        if (tenant.empty()) {
          return obs::HttpResponse::error(400, "missing ?tenant=<name>");
        }
        std::shared_lock<std::shared_mutex> registry(registry_mutex_);
        const auto it = tenants_.find(tenant);
        if (it == tenants_.end()) {
          return obs::HttpResponse::error(404, "no such tenant: " + tenant);
        }
        if (it->second->provenance == nullptr) {
          return obs::HttpResponse::error(
              404, "provenance recording is not enabled "
                   "(SessionManagerOptions::record_provenance)");
        }
        return obs::HttpResponse::json(
            obs::criticalpath_to_json(it->second->provenance->snapshot()));
      });
  if (!server->start()) return false;
  introspect_ = std::move(server);
  return true;
}

}  // namespace slider::serving
