// Multi-tenant serving runtime: one SessionManager multiplexes thousands
// of live sliding-window sessions on a single node (ROADMAP: serving
// layer; the systems counterpart of the paper's one-job SliderSession).
//
// Each tenant is a named (JobSpec, SliderConfig) pair with its own
// SliderSession, window state, and per-tenant time-series sink. Tenants
// share the process-wide substrate — one MemoStore (+ optional durable
// tier), one global ThreadPool, one WorkLedger — and the manager provides
// the isolation the sharing removes:
//
//   * identity: hash_string(tenant) is folded into every memo node id
//     (SliderConfig::tenant), so identical jobs never alias across
//     tenants, and every store entry carries its owner for accounting;
//   * capacity: per-tenant byte/entry quotas on the shared MemoStore,
//     enforced by quota-aware eviction that only ever evicts the
//     over-quota tenant's own entries (fallback recompute keeps outputs
//     byte-identical; the cost is latency, billed to the ledger);
//   * scheduling: tenants are sharded by name hash; run_pending() drains
//     the per-tenant queues shard-parallel on the global pool, one
//     request per tenant per round-robin cycle, so a backlogged tenant
//     cannot starve its shard;
//   * admission: submit() sheds work past a per-tenant watermark and
//     flags backlog past a softer one, instead of letting one tenant's
//     queue grow without bound;
//   * lifecycle: sessions idle for `idle_checkpoint_rounds` consecutive
//     run_pending() cycles are checkpointed to a spool directory and
//     destroyed; their live memo ids are pinned against whole-entry
//     eviction so the checkpoint's by-ref payloads survive, and the next
//     submitted slide transparently re-hydrates via restore().
//
// Observability: an optional fleet IntrospectionServer serves /healthz
// (per-tenant SLO verdicts aggregated to one fleet verdict), /metrics
// (the global registries, which now carry {tenant="..."} ledger series),
// /tenants.json (per-tenant counters + store usage), and
// /timeseries.json?tenant=NAME (that tenant's private series).
//
// Thread safety: add_tenant/submit/run_pending/status may be called
// concurrently. Each tenant's state is guarded by its own mutex, held for
// the duration of that tenant's runs — a status probe or submit for a
// tenant blocks while that tenant is mid-slide, never while others run.
// run_pending() itself is not reentrant (one drain at a time).
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "observability/introspection_server.h"
#include "observability/provenance.h"
#include "observability/timeseries.h"
#include "slider/session.h"
#include "storage/memo_store.h"

namespace slider::serving {

// One tenant's registration: a standing job plus its session config. The
// manager overwrites config.tenant (= name), config.timeseries (= the
// tenant's private sink), config.run_gc (= false: GC over a shared store
// must be fleet-global, see garbage_collect()), and
// config.introspect_port (= -1: the manager owns the fleet endpoint).
struct TenantSpec {
  std::string name;  // non-empty; unique within the manager
  JobSpec job;
  SliderConfig config;
  // Share of the shared MemoStore (0 = unbounded); enforced by
  // quota-aware eviction against this tenant only.
  TenantQuota quota;
};

enum class AdmitResult {
  kAccepted,  // queued below the backlog watermark
  kQueued,    // accepted, but the tenant's backlog passed queue_watermark
  kShed,      // dropped: backlog at shed_watermark (or tenant unusable)
  kUnknownTenant,
};

struct SessionManagerOptions {
  // Tenant shards drained in parallel by run_pending(). Clamped to >= 1.
  std::size_t shards = 8;
  // Per-tenant pending-request count at/above which submit() reports
  // kQueued (soft backlog signal).
  std::size_t queue_watermark = 8;
  // Per-tenant pending-request count at/above which submit() sheds.
  std::size_t shed_watermark = 64;
  // Consecutive run_pending() cycles a tenant must sit idle (no requests
  // executed, none queued) before its session is checkpointed to the
  // spool and destroyed. 0 disables idle checkpointing.
  std::size_t idle_checkpoint_rounds = 0;
  // Spool root for idle-session checkpoints; empty = a directory under
  // the system temp dir, unique to this manager instance.
  std::string spool_dir;
  // Run the fleet-global memo GC automatically at the end of every
  // run_pending() drain.
  bool auto_gc = true;
  // Fleet-level integrity scrubbing of the shared store's durable tier
  // (durability/scrubber.h): when > 0, every run_pending() drain verifies
  // this many at-rest record frames per executed run (minimum one tranche
  // even on an idle cycle), healing replica divergence and quarantining
  // corrupt segments for the whole fleet. Scheduling is thus proportional
  // to tenant activity: a busy fleet scrubs its larger at-rest footprint
  // faster. 0 (the default) disables. Tenants may additionally arm their
  // own per-slide scrubbing via SliderConfig::scrub_records_per_slide.
  std::uint64_t scrub_records_per_cycle = 0;
  // Fleet introspection endpoint (see IntrospectionServer); -1 = none.
  int introspect_port = -1;
  // Ring geometry of every tenant's private time-series sink. The
  // TimeSeries defaults (512 raw / 256 buckets) cost ~130KB per tenant —
  // fine for dozens, ruinous for a 10k-session fleet; scale drivers
  // shrink this.
  obs::TimeSeries::Options series_options;
  // Arm per-tenant lineage recording (SliderConfig::record_provenance).
  // Each tenant gets a private ProvenanceRecorder owned by the manager,
  // so lineage history survives idle checkpoint / re-hydration cycles;
  // the fleet endpoint serves it via /explain?tenant=NAME&key=... and
  // /criticalpath.json?tenant=NAME. A tenant whose spec already sets
  // config.record_provenance is armed even when this is false.
  bool record_provenance = false;
  // Ring geometry of every armed tenant's lineage recorder. The defaults
  // (32 raw DAGs) are sized for one session; large fleets shrink this.
  obs::ProvenanceRecorder::Options provenance_options;
};

struct TenantCounters {
  std::uint64_t submitted = 0;   // requests accepted into the queue
  std::uint64_t executed = 0;    // runs performed (initial + slides)
  std::uint64_t shed = 0;        // requests dropped by admission control
  std::uint64_t queued_over_watermark = 0;  // accepted while backlogged
  std::uint64_t checkpoints = 0;  // idle-lifecycle checkpoints taken
  std::uint64_t hydrations = 0;   // cold-session restores performed
  std::uint64_t hydrate_failures = 0;
};

struct TenantStatus {
  std::string name;
  bool cold = false;        // checkpointed out; next slide re-hydrates
  bool unusable = false;    // hydrate failed; requests are shed
  std::size_t pending = 0;  // queued requests
  std::size_t window_splits = 0;  // as of the last executed run
  TenantCounters counters;
  TenantUsage usage;  // this tenant's share of the shared MemoStore
  std::vector<obs::SloVerdict> verdicts;  // empty when cold / no SLOs
};

class SessionManager {
 public:
  SessionManager(const VanillaEngine& engine, MemoStore& memo,
                 SessionManagerOptions options);
  ~SessionManager();

  SessionManager(const SessionManager&) = delete;
  SessionManager& operator=(const SessionManager&) = delete;

  // Registers a tenant and queues its initial window build (executed by
  // the next run_pending()). False on empty/duplicate name.
  bool add_tenant(TenantSpec spec, std::vector<SplitPtr> initial_splits);

  // Queues one slide for `name`, subject to admission control.
  AdmitResult submit(const std::string& name, std::size_t remove_front,
                     std::vector<SplitPtr> added);

  // Drains every tenant queue: shards run in parallel on the global
  // ThreadPool, tenants within a shard round-robin one request per cycle.
  // Cold tenants with work re-hydrate from the spool first; tenants idle
  // past the threshold are checkpointed out afterwards. Returns the
  // number of runs executed.
  std::size_t run_pending();

  // Fleet-global memo GC: retains exactly the union of every live
  // session's live ids and every cold checkpoint's pinned ids. Called
  // automatically by run_pending() when options.auto_gc; callable
  // directly when driving sessions manually. Returns entries collected.
  std::size_t garbage_collect();

  std::size_t tenant_count() const;
  std::size_t total_pending() const {
    return total_pending_.load(std::memory_order_relaxed);
  }

  // Per-tenant probes. Unknown names return a default TenantStatus with
  // an empty name / empty outputs.
  TenantStatus status(const std::string& name) const;
  std::vector<TenantStatus> fleet_status() const;  // sorted by name
  // Serialized reduced outputs (one blob per partition) as of the
  // tenant's most recent executed run. Valid while the tenant is cold —
  // this is the soak's byte-identity probe.
  std::vector<std::string> last_outputs(const std::string& name) const;
  bool is_cold(const std::string& name) const;
  // Snapshot of the tenant's private time-series sink (empty snapshot for
  // unknown names) — the bench's per-tenant latency-percentile source.
  obs::TimeSeriesSnapshot tenant_series(const std::string& name) const;
  // The tenant's lineage recorder; nullptr for unknown or unarmed
  // tenants. Valid while the tenant is cold (lineage outlives the
  // session object, like the time-series sink).
  const obs::ProvenanceRecorder* tenant_provenance(
      const std::string& name) const;

  // Fleet endpoint. start_introspection() is a no-op (returning false)
  // when options.introspect_port is -1.
  bool start_introspection();
  const obs::IntrospectionServer* introspection() const {
    return introspect_.get();
  }

  // Fleet /healthz document: overall ok iff no live tenant has a failing
  // SLO verdict and the shared store is not durably degraded.
  std::string healthz_json() const;
  std::string tenants_json() const;

 private:
  struct Request {
    bool initial = false;
    std::size_t remove_front = 0;
    std::vector<SplitPtr> splits;
  };

  struct TenantState {
    std::string name;
    std::uint64_t salt = 0;  // hash_string(name)
    JobSpec job;
    SliderConfig config;  // tenant/timeseries/run_gc/introspect set
    std::string spool_dir;
    // Private time-series sink; SLOs evaluate over this, so a noisy
    // neighbour cannot breach this tenant's objectives.
    obs::TimeSeries series;
    // Private lineage recorder (non-null iff armed); outlives the session
    // across cold cycles so /explain keeps working on a spooled tenant.
    std::unique_ptr<obs::ProvenanceRecorder> provenance;

    mutable std::mutex mutex;  // guards everything below + session runs
    std::unique_ptr<SliderSession> session;  // null while cold/unusable
    bool cold = false;
    bool unusable = false;
    std::deque<Request> queue;
    std::size_t idle_rounds = 0;
    std::size_t window_splits = 0;
    TenantCounters counters;
    std::vector<std::string> outputs;  // serialized, as of last run
  };

  // Executes one request on a live session. Caller holds state.mutex.
  void execute_locked(TenantState& state, Request request);
  // Re-creates and restores a cold session. Caller holds state.mutex.
  bool hydrate_locked(TenantState& state);
  // Checkpoints an idle session out. Caller holds state.mutex.
  void checkpoint_locked(TenantState& state);
  // Rebuilds the pinned-id union from cold_ids_ and installs it on the
  // store. Caller holds cold_mutex_.
  void refresh_pinned_locked();

  TenantStatus status_of(const TenantState& state) const;
  std::size_t shard_of(const TenantState& state) const {
    return static_cast<std::size_t>(state.salt) % shards_.size();
  }

  const VanillaEngine* engine_;
  MemoStore* memo_;
  SessionManagerOptions options_;

  // Registry: name -> state (stable pointers), plus the shard lists
  // run_pending() iterates. Guarded by registry_mutex_ (writes only in
  // add_tenant; everything else shared-locks).
  mutable std::shared_mutex registry_mutex_;
  std::unordered_map<std::string, std::unique_ptr<TenantState>> tenants_;
  std::vector<std::vector<TenantState*>> shards_;

  // Cold tenants' live-id sets, pinned against whole-entry eviction so
  // their checkpoints' by-ref payloads survive until re-hydration.
  mutable std::mutex cold_mutex_;
  std::unordered_map<std::string, std::unordered_set<NodeId>> cold_ids_;

  std::atomic<std::size_t> total_pending_{0};
  std::mutex run_mutex_;  // run_pending is one-drain-at-a-time
  bool owns_spool_dir_ = false;  // we generated it; remove it on destruction
  std::unique_ptr<obs::IntrospectionServer> introspect_;
};

}  // namespace slider::serving
