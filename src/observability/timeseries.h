// Per-slide time series: the "how has this session behaved over the last
// 10k slides" dimension the instant-snapshot endpoints (/metrics,
// /ledger.json) cannot answer.
//
// The session commits one SlideSample per run (initial build, slide, or
// background phase) at the slide boundary — the same cold path that
// commits the work ledger. A sample is plain-old-data with fixed-size
// per-cause arrays, and the rings are preallocated, so record() never
// allocates: the per-slide cost is one short mutex hold and a struct copy.
//
// Tiered downsampling keeps the memory footprint constant while the
// history stays long: the most recent `raw_capacity` samples are kept
// verbatim; when a raw sample ages out it is folded into an aggregation
// bucket spanning `aggregate_width` consecutive slides (sums, maxima,
// degraded counts), and the bucket ring in turn drops its oldest bucket
// once `aggregate_capacity` is reached. With the defaults (512 raw, 256
// buckets of 32) a session's last 8704 slides are always reconstructible,
// the newest 512 of them exactly.
//
// Process-wide singleton, matching WorkLedger/StatsRegistry/TraceCollector:
// this is the per-tenant metrics substrate the ROADMAP's session-manager
// layer will label by tenant.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "observability/work_ledger.h"

namespace slider::obs {

// One committed run. POD on purpose: record() copies it into a
// preallocated ring slot.
struct SlideSample {
  std::uint64_t sequence = 0;  // assigned by record(), monotone
  RunKind kind = RunKind::kSlide;
  // Owning tenant, truncated to a fixed-size tag so the sample stays POD
  // and record() stays allocation-free. Empty for single-tenant sessions.
  std::array<char, 24> tenant{};
  void set_tenant(std::string_view name) {
    tenant.fill('\0');
    const std::size_t n = std::min(name.size(), tenant.size() - 1);
    name.copy(tenant.data(), n);
  }
  std::string_view tenant_view() const {
    return std::string_view(tenant.data());
  }
  double sim_start = 0;        // session sim clock when the run began (sec)
  double sim_latency = 0;      // simulated run latency (sec)
  double wall_latency_us = 0;  // host wall-clock latency of the run
  std::uint64_t window_splits = 0;
  std::uint64_t removed = 0;
  std::uint64_t added = 0;
  // Combiner invocations attributed per ledger cause for this run only.
  std::array<std::uint64_t, kWorkCauseCount> cause_invocations{};
  std::uint64_t combiner_invocations = 0;
  std::uint64_t combiner_reused = 0;
  std::uint64_t nodes_visited = 0;
  std::uint64_t task_retries = 0;
  std::uint64_t failed_attempts = 0;
  bool durable_degraded = false;  // store was degraded at the boundary

  // Fraction of combiner executions answered by the memo layer; 0 when the
  // run touched no combiners at all (pure-reuse slides score 1).
  double memo_hit_rate() const {
    const std::uint64_t touched = combiner_invocations + combiner_reused;
    if (touched == 0) return 0;
    return static_cast<double>(combiner_reused) / static_cast<double>(touched);
  }
};

// `aggregate_width` consecutive samples folded into one bucket.
struct AggregateSample {
  std::uint64_t first_sequence = 0;
  std::uint64_t count = 0;
  double sim_start = 0;  // of the first folded sample
  double sim_latency_sum = 0;
  double sim_latency_max = 0;
  double wall_latency_us_sum = 0;
  double wall_latency_us_max = 0;
  std::array<std::uint64_t, kWorkCauseCount> cause_invocations{};
  std::uint64_t combiner_invocations = 0;
  std::uint64_t combiner_reused = 0;
  std::uint64_t nodes_visited = 0;
  std::uint64_t task_retries = 0;
  std::uint64_t failed_attempts = 0;
  std::uint64_t degraded_samples = 0;  // samples folded while degraded

  void fold(const SlideSample& s);
};

struct TimeSeriesSnapshot {
  std::uint64_t total_recorded = 0;
  // Samples that fell off the far end of the aggregate ring — history the
  // snapshot can no longer account for.
  std::uint64_t samples_dropped = 0;
  std::vector<AggregateSample> aggregates;  // oldest first
  std::vector<SlideSample> raw;             // oldest first
};

class TimeSeries {
 public:
  struct Options {
    std::size_t raw_capacity = 512;
    std::size_t aggregate_width = 32;
    std::size_t aggregate_capacity = 256;
  };

  TimeSeries();
  explicit TimeSeries(Options options);

  // Process-wide series the sessions record into.
  static TimeSeries& global();

  // Assigns the sample's sequence and commits it. Never allocates: the
  // rings are preallocated at configure time. Thread-safe (one short
  // mutex hold; this is the cold once-per-run path).
  void record(SlideSample sample);

  std::uint64_t total_recorded() const;
  TimeSeriesSnapshot snapshot() const;
  std::string to_json() const { return timeseries_to_json(snapshot()); }

  // Reallocates the rings and clears history. Requires quiescent writers
  // (tests, tool startup).
  void configure(Options options);
  const Options& options() const { return options_; }

  // Clears history, keeping the configured capacities.
  void reset();

  static std::string timeseries_to_json(const TimeSeriesSnapshot& snapshot);

 private:
  Options options_;
  mutable std::mutex mutex_;
  std::uint64_t next_sequence_ = 0;
  std::uint64_t samples_dropped_ = 0;
  // Raw ring: samples [raw_start_, raw_start_ + raw_size_) mod capacity.
  std::vector<SlideSample> raw_;
  std::size_t raw_start_ = 0;
  std::size_t raw_size_ = 0;
  // Aggregate ring, same layout, plus the currently-filling bucket.
  std::vector<AggregateSample> aggregates_;
  std::size_t agg_start_ = 0;
  std::size_t agg_size_ = 0;
  AggregateSample open_bucket_;
  bool open_bucket_active_ = false;
};

}  // namespace slider::obs
