#include "observability/introspection_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "common/logging.h"
#include "observability/build_info.h"
#include "observability/timeseries.h"
#include "observability/trace.h"
#include "observability/trace_export.h"

namespace slider::obs {
namespace {

constexpr std::size_t kMaxRequestBytes = 8192;

std::string sanitize_metric_name(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  if (out.empty() || (out[0] >= '0' && out[0] <= '9')) out.insert(0, "_");
  return out;
}

void append_double(std::string& out, double value) {
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.12g", value);
  out += buffer;
}

const char* status_reason(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    default: return "Internal Server Error";
  }
}

}  // namespace

std::string HttpRequest::query_param(std::string_view key,
                                     std::string_view fallback) const {
  std::string_view rest = query;
  while (!rest.empty()) {
    const std::size_t amp = rest.find('&');
    const std::string_view pair =
        amp == std::string_view::npos ? rest : rest.substr(0, amp);
    rest = amp == std::string_view::npos ? std::string_view{}
                                         : rest.substr(amp + 1);
    const std::size_t eq = pair.find('=');
    const std::string_view name =
        eq == std::string_view::npos ? pair : pair.substr(0, eq);
    if (name == key) {
      return std::string(eq == std::string_view::npos ? std::string_view{}
                                                      : pair.substr(eq + 1));
    }
  }
  return std::string(fallback);
}

HttpResponse HttpResponse::error(int status, std::string message) {
  HttpResponse r;
  r.status = status;
  r.body = std::move(message);
  if (!r.body.empty() && r.body.back() != '\n') r.body += '\n';
  return r;
}

// --- Prometheus exposition ---------------------------------------------------

std::string prometheus_text(const StatsSnapshot& stats,
                            const LedgerSnapshot& ledger) {
  std::string out;
  out.reserve(4096);

  // Build identity first (standard Prometheus build-info convention): a
  // constant-1 gauge whose labels carry version / git sha / build type and
  // any runtime labels (e.g. tree_variant, set by the session).
  out += "# TYPE slider_build_info gauge\n";
  out += build_info_prometheus_line();
  out += "\n";

  for (const auto& [name, value] : stats.counters) {
    const std::string metric = "slider_" + sanitize_metric_name(name) +
                               "_total";
    out += "# TYPE " + metric + " counter\n";
    out += metric + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, value] : stats.gauges) {
    const std::string metric = "slider_" + sanitize_metric_name(name);
    out += "# TYPE " + metric + " gauge\n";
    out += metric + " ";
    append_double(out, value);
    out += "\n";
  }
  for (const auto& [name, histogram] : stats.histograms) {
    const std::string metric = "slider_" + sanitize_metric_name(name);
    out += "# TYPE " + metric + " histogram\n";
    // Cumulative buckets. Observations below the configured range are
    // below every finite upper bound, so the running sum starts at the
    // underflow count; the +Inf bucket (== _count) absorbs the overflow.
    std::uint64_t cumulative = histogram.underflow;
    for (const HistogramBucketCount& bucket : histogram.buckets) {
      cumulative += bucket.count;
      out += metric + "_bucket{le=\"";
      append_double(out, bucket.upper_bound);
      out += "\"} " + std::to_string(cumulative) + "\n";
    }
    out += metric + "_bucket{le=\"+Inf\"} " + std::to_string(histogram.count) +
           "\n";
    out += metric + "_sum ";
    append_double(out, histogram.sum);
    out += "\n";
    out += metric + "_count " + std::to_string(histogram.count) + "\n";
  }

  // Causal work ledger: per-cause totals.
  struct Field {
    const char* metric;
    std::uint64_t CauseWork::* member;
  };
  static constexpr Field kFields[] = {
      {"slider_work_combiner_invocations_total",
       &CauseWork::combiner_invocations},
      {"slider_work_combiner_reused_total", &CauseWork::combiner_reused},
      {"slider_work_nodes_visited_total", &CauseWork::nodes_visited},
      {"slider_work_rows_scanned_total", &CauseWork::rows_scanned},
      {"slider_work_memo_bytes_read_total", &CauseWork::memo_bytes_read},
      {"slider_work_memo_bytes_written_total",
       &CauseWork::memo_bytes_written},
  };
  for (const Field& field : kFields) {
    out += std::string("# TYPE ") + field.metric + " counter\n";
    for (std::size_t c = 0; c < kWorkCauseCount; ++c) {
      out += field.metric;
      out += "{cause=\"";
      out += work_cause_name(static_cast<WorkCause>(c));
      out += "\"} ";
      out += std::to_string(ledger.totals[c].*(field.member));
      out += "\n";
    }
  }

  // Per-tenant attribution (the serving layer's SessionManager tags every
  // run it drives): one labelled series per tenant. Absent entirely for
  // single-tenant processes, so the exposition format is unchanged there.
  if (!ledger.tenants.empty()) {
    const auto label_escape = [](const std::string& s) {
      std::string esc;
      esc.reserve(s.size());
      for (const char c : s) {
        if (c == '\\' || c == '"') esc += '\\';
        if (c == '\n') { esc += "\\n"; continue; }
        esc += c;
      }
      return esc;
    };
    out += "# TYPE slider_tenant_runs_committed_total counter\n";
    for (const TenantWork& t : ledger.tenants) {
      out += "slider_tenant_runs_committed_total{tenant=\"" +
             label_escape(t.tenant) + "\"} " +
             std::to_string(t.runs_committed) + "\n";
    }
    out += "# TYPE slider_tenant_work_combiner_invocations_total counter\n";
    for (const TenantWork& t : ledger.tenants) {
      for (std::size_t c = 0; c < kWorkCauseCount; ++c) {
        if (t.totals[c].combiner_invocations == 0) continue;
        out += "slider_tenant_work_combiner_invocations_total{tenant=\"" +
               label_escape(t.tenant) + "\",cause=\"";
        out += work_cause_name(static_cast<WorkCause>(c));
        out += "\"} " + std::to_string(t.totals[c].combiner_invocations) + "\n";
      }
    }
  }

  const auto ledger_counter = [&out](const char* metric, std::uint64_t value) {
    out += std::string("# TYPE ") + metric + " counter\n";
    out += std::string(metric) + " " + std::to_string(value) + "\n";
  };
  ledger_counter("slider_ledger_runs_committed_total", ledger.runs_committed);
  ledger_counter("slider_ledger_eviction_forced_misses_total",
                 ledger.counters.eviction_forced_misses);
  ledger_counter("slider_ledger_budget_evictions_total",
                 ledger.counters.budget_evictions);
  ledger_counter("slider_ledger_quota_evictions_total",
                 ledger.counters.quota_evictions);
  ledger_counter("slider_ledger_recovered_entries_total",
                 ledger.counters.recovered_entries);
  ledger_counter("slider_ledger_recovered_bytes_total",
                 ledger.counters.recovered_bytes);
  ledger_counter("slider_ledger_speculative_reexecutions_total",
                 ledger.counters.speculative_reexecutions);
  ledger_counter("slider_ledger_failure_forced_misses_total",
                 ledger.counters.failure_forced_misses);
  ledger_counter("slider_ledger_degraded_mode_intervals_total",
                 ledger.counters.degraded_mode_intervals);
  // Integrity scrubbing (durability/scrubber.h): at-rest frames verified,
  // corruptions found, and how each was resolved. Conservation invariant:
  // detected == repairs + quarantines at every scrape.
  ledger_counter("slider_scrub_records_verified_total",
                 ledger.counters.scrub_records_verified);
  ledger_counter("slider_scrub_corruptions_detected_total",
                 ledger.counters.scrub_corruptions_detected);
  ledger_counter("slider_scrub_repairs_total", ledger.counters.scrub_repairs);
  ledger_counter("slider_scrub_quarantines_total",
                 ledger.counters.scrub_quarantines);
  // Fault-tolerance scoreboard (robustness/chaos.h): chaos events injected,
  // task attempts re-queued, and machines blacklisted for repeated injected
  // failures. machines_blacklisted is exposed as a gauge: blacklists are
  // per-stage state, not a monotone stream.
  ledger_counter("slider_failures_injected_total",
                 ledger.counters.failures_injected);
  ledger_counter("slider_task_retries_total", ledger.counters.task_retries);
  out += "# TYPE slider_machines_blacklisted gauge\n";
  out += "slider_machines_blacklisted " +
         std::to_string(ledger.counters.machines_blacklisted) + "\n";
  return out;
}

// --- server ------------------------------------------------------------------

IntrospectionServer::IntrospectionServer() : IntrospectionServer(Options{}) {}

IntrospectionServer::IntrospectionServer(Options options)
    : options_(std::move(options)) {
  // Built-in routes. Handlers snapshot through each subsystem's own
  // synchronization; no server-side lock is held while they run.
  add_route("/healthz", [](const HttpRequest&) {
    return HttpResponse::text("ok\n");
  });
  add_route("/metrics", [](const HttpRequest&) {
    return HttpResponse::text(
        prometheus_text(StatsRegistry::global().snapshot(),
                        WorkLedger::global().snapshot()),
        "text/plain; version=0.0.4; charset=utf-8");
  });
  add_route("/ledger.json", [](const HttpRequest&) {
    return HttpResponse::json(WorkLedger::global().to_json());
  });
  add_route("/trace", [](const HttpRequest&) {
    TraceCollector& collector = TraceCollector::global();
    const std::vector<TraceEvent> events = collector.snapshot();
    return HttpResponse::json(
        to_chrome_trace_json(events, collector.dropped()));
  });
  add_route("/timeseries.json", [](const HttpRequest&) {
    return HttpResponse::json(TimeSeries::global().to_json());
  });
}

IntrospectionServer::~IntrospectionServer() { stop(); }

void IntrospectionServer::add_route(std::string path, Handler handler) {
  std::lock_guard<std::mutex> lock(routes_mutex_);
  routes_[std::move(path)] = std::move(handler);
}

bool IntrospectionServer::start() {
  if (running()) return true;
  stop_requested_.store(false, std::memory_order_release);

  const auto try_bind = [this](std::uint16_t port) -> int {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return -1;
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
        1) {
      ::close(fd);
      errno = EINVAL;
      return -1;
    }
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
            0 ||
        ::listen(fd, 16) != 0) {
      const int saved = errno;
      ::close(fd);
      errno = saved;
      return -1;
    }
    return fd;
  };

  int fd = try_bind(options_.port);
  if (fd < 0 && options_.port != 0 && errno == EADDRINUSE &&
      options_.fallback_to_ephemeral) {
    SLIDER_LOG(Warning) << "introspection port " << options_.port
                        << " in use; falling back to an ephemeral port";
    fd = try_bind(0);
  }
  if (fd < 0) {
    SLIDER_LOG(Error) << "introspection server bind failed: "
                      << std::strerror(errno);
    return false;
  }

  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) !=
      0) {
    SLIDER_LOG(Error) << "introspection server getsockname failed";
    ::close(fd);
    return false;
  }
  listen_fd_ = fd;
  port_ = ntohs(bound.sin_port);
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { accept_loop(); });
  SLIDER_LOG(Info) << "introspection server listening on "
                   << options_.bind_address << ":" << port_;
  return true;
}

void IntrospectionServer::stop() {
  if (!running()) return;
  stop_requested_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  port_ = 0;
  running_.store(false, std::memory_order_release);
}

void IntrospectionServer::accept_loop() {
  while (!stop_requested_.load(std::memory_order_acquire)) {
    pollfd pfd{};
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (ready <= 0) continue;  // timeout or EINTR: re-check the stop flag
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) continue;
    handle_connection(client);
    ::close(client);
  }
}

void IntrospectionServer::handle_connection(int fd) const {
  // Bound both directions so a stuck peer cannot wedge the accept thread.
  timeval timeout{};
  timeout.tv_sec = 2;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &timeout, sizeof(timeout));

  std::string request;
  char buffer[1024];
  while (request.size() < kMaxRequestBytes &&
         request.find("\r\n\r\n") == std::string::npos &&
         request.find("\n\n") == std::string::npos) {
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n <= 0) break;
    request.append(buffer, static_cast<std::size_t>(n));
  }
  if (request.empty()) return;

  const std::string response = handle_raw_request(request);
  std::size_t sent = 0;
  while (sent < response.size()) {
    const ssize_t n = ::send(fd, response.data() + sent,
                             response.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) break;
    sent += static_cast<std::size_t>(n);
  }
}

std::string IntrospectionServer::handle_raw_request(
    std::string_view request_text) const {
  HttpResponse response;

  // Parse the request line: METHOD SP TARGET SP VERSION.
  const std::size_t line_end = request_text.find_first_of("\r\n");
  const std::string_view line = line_end == std::string_view::npos
                                    ? request_text
                                    : request_text.substr(0, line_end);
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 =
      sp1 == std::string_view::npos ? sp1 : line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos ||
      sp2 <= sp1 + 1 || line.substr(sp2 + 1).rfind("HTTP/", 0) != 0) {
    response = HttpResponse::error(400, "malformed request line");
  } else {
    HttpRequest request;
    request.method = std::string(line.substr(0, sp1));
    const std::string_view target = line.substr(sp1 + 1, sp2 - sp1 - 1);
    const std::size_t question = target.find('?');
    request.path = std::string(target.substr(0, question));
    if (question != std::string_view::npos) {
      request.query = std::string(target.substr(question + 1));
    }
    if (request.method != "GET" && request.method != "HEAD") {
      response = HttpResponse::error(405, "only GET is supported");
    } else if (request.path.empty() || request.path[0] != '/') {
      response = HttpResponse::error(400, "target must be an absolute path");
    } else {
      response = dispatch(request);
      if (request.method == "HEAD") response.body.clear();
    }
  }

  std::string out;
  out.reserve(response.body.size() + 128);
  out += "HTTP/1.0 " + std::to_string(response.status) + " " +
         status_reason(response.status) + "\r\n";
  out += "Content-Type: " + response.content_type + "\r\n";
  out += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  out += "Connection: close\r\n\r\n";
  out += response.body;
  return out;
}

HttpResponse IntrospectionServer::dispatch(const HttpRequest& request) const {
  Handler handler;
  {
    std::lock_guard<std::mutex> lock(routes_mutex_);
    // "/" doubles as a route index for humans poking with curl.
    if (request.path == "/") {
      std::string body = "slider introspection endpoint\nroutes:\n";
      for (const auto& [path, unused] : routes_) body += "  " + path + "\n";
      return HttpResponse::text(std::move(body));
    }
    const auto it = routes_.find(request.path);
    if (it == routes_.end()) {
      return HttpResponse::error(404, "no such route: " + request.path);
    }
    handler = it->second;  // copy, so the handler runs without the lock
  }
  return handler(request);
}

}  // namespace slider::obs
