// Typed metrics: counters, gauges, and fixed-bucket histograms with
// percentile estimation, plus a process-wide named registry.
//
// This upgrades the flat double-valued MetricsRegistry
// (src/common/metrics.h, kept for lightweight ad-hoc accounting): storage
// and scheduling report into typed instruments here, and the bench
// RunReport embeds a registry snapshot so every BENCH_*.json carries the
// same counter set. Histograms use fixed bucket bounds (linear or
// exponential) so p50/p95/p99 are O(buckets) to read and the memory
// footprint is constant — the same design Prometheus client libraries
// settled on.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace slider::obs {

// Monotonic event counter. Thread-safe, lock-free.
class Counter {
 public:
  // Adds `delta` and returns the post-add value.
  std::uint64_t add(std::uint64_t delta = 1) {
    return value_.fetch_add(delta, std::memory_order_relaxed) + delta;
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

// Last-value-wins instantaneous measurement. Thread-safe.
class Gauge {
 public:
  void set(double value) { value_.store(value, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  // Read-modify-write add (CAS loop); returns the post-add value.
  double add(double delta) {
    double current = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(current, current + delta,
                                         std::memory_order_relaxed)) {
    }
    return current + delta;
  }
  void reset() { set(0); }

 private:
  std::atomic<double> value_{0};
};

struct HistogramOptions {
  double min = 0;              // lower bound of the first bucket
  double max = 1;              // upper bound of the last bucket
  std::size_t buckets = 64;    // finite buckets between min and max
  // Exponential bucket widths (min must be > 0); linear otherwise.
  bool exponential = false;
};

// One finite histogram bucket: observations in [lower, upper_bound).
struct HistogramBucketCount {
  double upper_bound = 0;
  std::uint64_t count = 0;  // per-bucket count (not cumulative)
};

struct HistogramSnapshot {
  std::uint64_t count = 0;
  double sum = 0;
  double min = 0;  // smallest observed value (0 when empty)
  double max = 0;  // largest observed value (0 when empty)
  double p50 = 0;
  double p95 = 0;
  double p99 = 0;
  // Out-of-range observations. count == underflow + Σ buckets + overflow —
  // without these two the bucket counts silently under-report whenever the
  // configured [min, max) range misses the data.
  std::uint64_t underflow = 0;
  std::uint64_t overflow = 0;
  std::vector<HistogramBucketCount> buckets;  // finite buckets, in order
};

// Fixed-bucket histogram. Observations outside [min, max) land in
// dedicated under/overflow buckets; percentiles interpolate linearly
// inside a bucket and clamp to the observed min/max at the extremes.
// Thread-safe via an internal mutex (observe() is not a hot-loop path in
// this codebase; the per-node hot paths use trace counters instead).
class Histogram {
 public:
  explicit Histogram(const HistogramOptions& options = {});

  void observe(double value);

  std::uint64_t count() const;
  double sum() const;
  // `p` in [0, 100]. Returns 0 for an empty histogram.
  double percentile(double p) const;
  HistogramSnapshot snapshot() const;
  void reset();

  const HistogramOptions& options() const { return options_; }

 private:
  double bucket_lower_bound(std::size_t bucket) const;  // finite buckets
  double bucket_upper_bound(std::size_t bucket) const;
  std::size_t bucket_for(double value) const;
  double percentile_locked(double p) const;

  HistogramOptions options_;
  mutable std::mutex mutex_;
  std::vector<std::uint64_t> counts_;  // [underflow, finite..., overflow]
  std::uint64_t total_ = 0;
  double sum_ = 0;
  double min_seen_ = 0;
  double max_seen_ = 0;
};

struct StatsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;
};

// Named instrument registry. Instruments are created on first use and
// live for the registry's lifetime, so returned references stay valid.
class StatsRegistry {
 public:
  static StatsRegistry& global();

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  // `options` applies only on first creation of `name`.
  Histogram& histogram(std::string_view name,
                       const HistogramOptions& options = {});

  StatsSnapshot snapshot() const;
  // Zeroes every instrument (the instruments themselves survive).
  void reset();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace slider::obs
