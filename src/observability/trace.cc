#include "observability/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>

namespace slider::obs {
namespace {

double steady_ns() {
  return static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

bool env_truthy(const char* name) {
  const char* value = std::getenv(name);
  if (value == nullptr) return false;
  return std::strcmp(value, "1") == 0 || std::strcmp(value, "true") == 0 ||
         std::strcmp(value, "on") == 0 || std::strcmp(value, "ON") == 0;
}

void copy_args(std::array<TraceArg, 2>& dst,
               std::initializer_list<TraceArg> src) {
  std::size_t i = 0;
  for (const TraceArg& arg : src) {
    if (i >= dst.size()) break;
    dst[i++] = arg;
  }
}

}  // namespace

TraceCollector::TraceCollector(std::size_t capacity)
    : ring_(std::max<std::size_t>(1, capacity)), epoch_ns_(steady_ns()) {}

TraceCollector& TraceCollector::global() {
  static TraceCollector* collector = [] {
    auto* c = new TraceCollector();
    c->set_enabled(env_truthy("SLIDER_TRACE"));
    return c;
  }();
  return *collector;
}

void TraceCollector::set_capacity(std::size_t capacity) {
  std::lock_guard<std::mutex> lock(maintenance_mutex_);
  ring_.assign(std::max<std::size_t>(1, capacity), TraceEvent{});
  next_seq_.store(0, std::memory_order_relaxed);
}

std::size_t TraceCollector::capacity() const {
  std::lock_guard<std::mutex> lock(maintenance_mutex_);
  return ring_.size();
}

double TraceCollector::now_us() const {
  return (steady_ns() - epoch_ns_) / 1e3;
}

std::uint32_t TraceCollector::current_thread_track() {
  static std::atomic<std::uint32_t> next_track{1};
  thread_local std::uint32_t track =
      next_track.fetch_add(1, std::memory_order_relaxed);
  return track;
}

void TraceCollector::record(TraceEvent event) {
  if (!enabled()) return;
  const std::uint64_t seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
  event.seq = seq;
  ring_[seq % ring_.size()] = event;
}

void TraceCollector::complete_span(const char* category, const char* name,
                                   double start_us, double dur_us,
                                   std::initializer_list<TraceArg> args) {
  if (!enabled()) return;
  TraceEvent event;
  event.category = category;
  event.name = name;
  event.phase = 'X';
  event.domain = TraceClockDomain::kWall;
  event.track = current_thread_track();
  event.ts_us = start_us;
  event.dur_us = dur_us;
  copy_args(event.args, args);
  record(event);
}

void TraceCollector::instant(const char* category, const char* name,
                             std::initializer_list<TraceArg> args) {
  if (!enabled()) return;
  TraceEvent event;
  event.category = category;
  event.name = name;
  event.phase = 'i';
  event.domain = TraceClockDomain::kWall;
  event.track = current_thread_track();
  event.ts_us = now_us();
  copy_args(event.args, args);
  record(event);
}

void TraceCollector::counter(const char* category, const char* name,
                             double value) {
  if (!enabled()) return;
  TraceEvent event;
  event.category = category;
  event.name = name;
  event.phase = 'C';
  event.domain = TraceClockDomain::kWall;
  event.ts_us = now_us();
  event.counter_value = value;
  record(event);
}

void TraceCollector::sim_span(const char* category, const char* name,
                              double start_sec, double dur_sec,
                              std::uint32_t track,
                              std::initializer_list<TraceArg> args) {
  if (!enabled()) return;
  TraceEvent event;
  event.category = category;
  event.name = name;
  event.phase = 'X';
  event.domain = TraceClockDomain::kSimulated;
  event.track = track;
  event.ts_us = start_sec * 1e6;
  event.dur_us = dur_sec * 1e6;
  copy_args(event.args, args);
  record(event);
}

void TraceCollector::sim_instant(const char* category, const char* name,
                                 double ts_sec, std::uint32_t track,
                                 std::initializer_list<TraceArg> args) {
  if (!enabled()) return;
  TraceEvent event;
  event.category = category;
  event.name = name;
  event.phase = 'i';
  event.domain = TraceClockDomain::kSimulated;
  event.track = track;
  event.ts_us = ts_sec * 1e6;
  copy_args(event.args, args);
  record(event);
}

void TraceCollector::sim_counter(const char* category, const char* name,
                                 double ts_sec, double value) {
  if (!enabled()) return;
  TraceEvent event;
  event.category = category;
  event.name = name;
  event.phase = 'C';
  event.domain = TraceClockDomain::kSimulated;
  event.ts_us = ts_sec * 1e6;
  event.counter_value = value;
  record(event);
}

std::vector<TraceEvent> TraceCollector::snapshot() const {
  std::lock_guard<std::mutex> lock(maintenance_mutex_);
  const std::uint64_t committed = next_seq_.load(std::memory_order_relaxed);
  const std::uint64_t cap = ring_.size();
  const std::uint64_t first = committed > cap ? committed - cap : 0;
  std::vector<TraceEvent> events;
  events.reserve(static_cast<std::size_t>(committed - first));
  for (std::uint64_t seq = first; seq < committed; ++seq) {
    const TraceEvent& event = ring_[seq % cap];
    // A slot whose seq does not match was in flight mid-snapshot; skip it.
    if (event.seq == seq) events.push_back(event);
  }
  return events;
}

void TraceCollector::clear() {
  std::lock_guard<std::mutex> lock(maintenance_mutex_);
  std::fill(ring_.begin(), ring_.end(), TraceEvent{});
  next_seq_.store(0, std::memory_order_relaxed);
}

std::uint64_t TraceCollector::dropped() const {
  std::lock_guard<std::mutex> lock(maintenance_mutex_);
  const std::uint64_t committed = next_seq_.load(std::memory_order_relaxed);
  return committed > ring_.size() ? committed - ring_.size() : 0;
}

ScopedSpan::ScopedSpan(const char* category, const char* name,
                       std::initializer_list<TraceArg> args)
    : category_(category), name_(name) {
  TraceCollector& collector = TraceCollector::global();
  if (!collector.enabled()) return;
  std::size_t i = 0;
  for (const TraceArg& arg : args) {
    if (i >= args_.size()) break;
    args_[i++] = arg;
  }
  start_us_ = collector.now_us();
  armed_ = true;
}

ScopedSpan::~ScopedSpan() {
  if (!armed_) return;
  TraceCollector& collector = TraceCollector::global();
  if (!collector.enabled()) return;
  collector.complete_span(category_, name_, start_us_,
                          collector.now_us() - start_us_,
                          {args_[0], args_[1]});
}

}  // namespace slider::obs
