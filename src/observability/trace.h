// Run tracing: lock-cheap, ring-buffered span/event collection.
//
// The paper's evaluation (§7) is an observability exercise — per-phase
// breakdowns (Fig 9), work-vs-time (Fig 7/8), memo-cache behaviour
// (Table 2), straggler timelines (Table 1). This subsystem records those
// quantities as trace events that export to Chrome trace-event JSON
// (loadable in Perfetto / chrome://tracing) and to a human-readable
// summary (trace_export.h).
//
// Two clock domains:
//   * wall  — real microseconds on the host (std::steady_clock), used for
//     spans around actual library work (memo (de)serialization, tree
//     updates, session entry points);
//   * simulated — the cost model's simulated seconds, used to reconstruct
//     the cluster timeline (map wave, per-task contraction+reduce
//     placement, per-level contraction) that the paper's figures reason
//     about. Exported as a second "process" so both timelines coexist in
//     one Perfetto view.
//
// Gating:
//   * compile time — the SLIDER_TRACE_* macros compile to nothing when the
//     CMake option SLIDER_ENABLE_TRACING is OFF (SLIDER_TRACING_ENABLED=0);
//   * run time — TraceCollector::global() starts disabled unless the
//     SLIDER_TRACE env var is truthy; set_enabled() flips it at any point.
//     When disabled, record() is one relaxed atomic load.
//
// Concurrency: record() claims a slot with a relaxed fetch_add and writes
// it without locking — safe for concurrent writers as long as the buffer
// does not lap itself within one "round" of concurrent writers (capacity
// is 64k events by default; laps only drop the oldest events, never
// corrupt the JSON). snapshot()/clear()/set_capacity() take a mutex and
// expect writers to be quiescent (true in this single-process simulator:
// export happens between runs).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <mutex>
#include <vector>

#ifndef SLIDER_TRACING_ENABLED
#define SLIDER_TRACING_ENABLED 1
#endif

namespace slider::obs {

enum class TraceClockDomain : std::uint8_t { kWall, kSimulated };

// Named numeric argument attached to an event ("partition", 3).
// Names must be string literals (or otherwise outlive the collector).
struct TraceArg {
  const char* name = nullptr;
  double value = 0;
};

struct TraceEvent {
  static constexpr std::uint64_t kUnwritten = ~0ull;

  const char* category = "";  // must outlive the collector (string literal)
  const char* name = "";      // must outlive the collector (string literal)
  char phase = 'X';           // 'X' complete span, 'i' instant, 'C' counter
  TraceClockDomain domain = TraceClockDomain::kWall;
  std::uint32_t track = 0;    // exported as tid: thread (wall) or lane (sim)
  std::uint64_t seq = kUnwritten;  // global commit order, assigned by record()
  double ts_us = 0;           // event start, microseconds in its domain
  double dur_us = 0;          // 'X' only
  double counter_value = 0;   // 'C' only
  std::array<TraceArg, 2> args{};  // unused entries have name == nullptr
};

class TraceCollector {
 public:
  static constexpr std::size_t kDefaultCapacity = 1 << 16;

  explicit TraceCollector(std::size_t capacity = kDefaultCapacity);

  // Process-wide collector used by the SLIDER_TRACE_* macros. Initially
  // enabled iff the SLIDER_TRACE env var is "1"/"true"/"on".
  static TraceCollector& global();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }

  // Requires quiescent writers; clears the buffer.
  void set_capacity(std::size_t capacity);
  std::size_t capacity() const;

  // Wall-clock microseconds since this collector's epoch.
  double now_us() const;

  // Small dense id for the calling thread (stable for its lifetime).
  static std::uint32_t current_thread_track();

  // Core sink. Assigns seq; drops the oldest event once the ring is full.
  // No-op while disabled.
  void record(TraceEvent event);

  // Convenience emitters (all no-ops while disabled) --------------------

  // Wall-domain complete span covering [start_us, start_us + dur_us].
  void complete_span(const char* category, const char* name, double start_us,
                     double dur_us, std::initializer_list<TraceArg> args = {});
  // Wall-domain instant event at now.
  void instant(const char* category, const char* name,
               std::initializer_list<TraceArg> args = {});
  // Wall-domain counter sample at now.
  void counter(const char* category, const char* name, double value);

  // Simulated-domain span [start_sec, start_sec + dur_sec] (seconds);
  // `track` selects the Perfetto lane (e.g. the machine id).
  void sim_span(const char* category, const char* name, double start_sec,
                double dur_sec, std::uint32_t track = 0,
                std::initializer_list<TraceArg> args = {});
  // Simulated-domain instant event at `ts_sec`.
  void sim_instant(const char* category, const char* name, double ts_sec,
                   std::uint32_t track = 0,
                   std::initializer_list<TraceArg> args = {});
  // Simulated-domain counter sample at `ts_sec`.
  void sim_counter(const char* category, const char* name, double ts_sec,
                   double value);

  // Committed events in seq order (oldest surviving first). Takes the
  // maintenance mutex; call between runs, not concurrently with writers.
  std::vector<TraceEvent> snapshot() const;
  void clear();

  std::uint64_t total_recorded() const {
    return next_seq_.load(std::memory_order_relaxed);
  }
  // Events lost to ring wrap-around since the last clear().
  std::uint64_t dropped() const;

 private:
  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> next_seq_{0};
  mutable std::mutex maintenance_mutex_;
  std::vector<TraceEvent> ring_;
  double epoch_ns_ = 0;  // steady_clock at construction
};

// RAII wall-clock span recorded on the global collector at scope exit.
// Reads the clock only when the collector is enabled at construction.
class ScopedSpan {
 public:
  ScopedSpan(const char* category, const char* name,
             std::initializer_list<TraceArg> args = {});
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  ~ScopedSpan();

 private:
  const char* category_;
  const char* name_;
  std::array<TraceArg, 2> args_{};
  double start_us_ = 0;
  bool armed_ = false;
};

}  // namespace slider::obs

// --- macros ------------------------------------------------------------------
//
// SLIDER_TRACE_SPAN(category, name[, {{"k", v}, ...}])  — RAII span for the
//   rest of the enclosing scope.
// SLIDER_TRACE_EVENT(category, name[, {...}])           — instant event.
// SLIDER_TRACE_COUNTER(category, name, value)           — counter sample.
//
// All three compile away entirely (arguments unevaluated) when the build
// disables tracing, and cost one relaxed atomic load when tracing is
// compiled in but runtime-disabled.

#define SLIDER_TRACE_INTERNAL_CAT2(a, b) a##b
#define SLIDER_TRACE_INTERNAL_CAT(a, b) SLIDER_TRACE_INTERNAL_CAT2(a, b)

#if SLIDER_TRACING_ENABLED
#define SLIDER_TRACE_SPAN(...)                                     \
  ::slider::obs::ScopedSpan SLIDER_TRACE_INTERNAL_CAT(slider_span_, \
                                                      __LINE__)(__VA_ARGS__)
#define SLIDER_TRACE_EVENT(...) \
  ::slider::obs::TraceCollector::global().instant(__VA_ARGS__)
#define SLIDER_TRACE_COUNTER(category, name, value) \
  ::slider::obs::TraceCollector::global().counter(category, name, value)
#else
#define SLIDER_TRACE_SPAN(...) static_cast<void>(0)
#define SLIDER_TRACE_EVENT(...) static_cast<void>(0)
#define SLIDER_TRACE_COUNTER(category, name, value) static_cast<void>(0)
#endif
