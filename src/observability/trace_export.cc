#include "observability/trace_export.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <tuple>
#include <vector>

#include "common/logging.h"
#include "observability/json_writer.h"

namespace slider::obs {
namespace {

int pid_of(const TraceEvent& event) {
  return event.domain == TraceClockDomain::kWall ? kWallPid : kSimulatedPid;
}

void write_event(JsonWriter& json, const TraceEvent& event) {
  json.begin_object();
  json.key("name").value(std::string_view(event.name));
  json.key("cat").value(std::string_view(event.category));
  json.key("ph").value(std::string_view(&event.phase, 1));
  json.key("pid").value(static_cast<std::int64_t>(pid_of(event)));
  json.key("tid").value(static_cast<std::uint64_t>(event.track));
  json.key("ts").value(event.ts_us);
  if (event.phase == 'X') json.key("dur").value(event.dur_us);
  if (event.phase == 'i') json.key("s").value("t");  // thread-scoped instant

  json.key("args").begin_object();
  if (event.phase == 'C') {
    json.key("value").value(event.counter_value);
  }
  for (const TraceArg& arg : event.args) {
    if (arg.name == nullptr) continue;
    json.key(std::string_view(arg.name)).value(arg.value);
  }
  json.end_object();
  json.end_object();
}

void write_metadata(JsonWriter& json, int pid, const char* process_name) {
  json.begin_object();
  json.key("name").value("process_name");
  json.key("ph").value("M");
  json.key("pid").value(static_cast<std::int64_t>(pid));
  json.key("tid").value(static_cast<std::uint64_t>(0));
  json.key("args").begin_object();
  json.key("name").value(process_name);
  json.end_object();
  json.end_object();
}

}  // namespace

std::string to_chrome_trace_json(std::span<const TraceEvent> events,
                                 std::uint64_t dropped_events) {
  // Sort by (pid, ts, seq) so each exported process has monotone
  // timestamps; seq keeps identical timestamps in commit order.
  std::vector<const TraceEvent*> ordered;
  ordered.reserve(events.size());
  for (const TraceEvent& event : events) ordered.push_back(&event);
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const TraceEvent* a, const TraceEvent* b) {
                     return std::make_tuple(pid_of(*a), a->ts_us, a->seq) <
                            std::make_tuple(pid_of(*b), b->ts_us, b->seq);
                   });

  JsonWriter json;
  json.begin_object();
  json.key("displayTimeUnit").value("ms");
  // Top-level metadata (the "JSON Object" flavour allows arbitrary extra
  // keys; Perfetto keeps them in trace info). droppedEvents != 0 means the
  // ring lapped and the oldest spans are missing from this document.
  json.key("metadata").begin_object();
  json.key("droppedEvents").value(dropped_events);
  json.key("retainedEvents").value(static_cast<std::uint64_t>(events.size()));
  json.end_object();
  json.key("traceEvents").begin_array();
  write_metadata(json, kWallPid, "slider wall-clock");
  write_metadata(json, kSimulatedPid, "slider simulated cluster");
  for (const TraceEvent* event : ordered) write_event(json, *event);
  json.end_array();
  json.end_object();
  return json.take();
}

bool write_chrome_trace(const std::string& path,
                        std::span<const TraceEvent> events,
                        std::uint64_t dropped_events) {
  const std::string document = to_chrome_trace_json(events, dropped_events);
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    SLIDER_LOG(Error) << "cannot open trace output file " << path;
    return false;
  }
  const std::size_t written =
      std::fwrite(document.data(), 1, document.size(), file);
  std::fclose(file);
  if (written != document.size()) {
    SLIDER_LOG(Error) << "short write to trace output file " << path;
    return false;
  }
  return true;
}

std::string trace_summary(std::span<const TraceEvent> events,
                          std::uint64_t dropped_events) {
  struct SpanAgg {
    std::uint64_t count = 0;
    double total_us = 0;
    double max_us = 0;
  };
  // Keyed by (domain tag, category, name); std::map gives sorted output.
  std::map<std::tuple<int, std::string, std::string>, SpanAgg> spans;
  std::map<std::tuple<int, std::string, std::string>, double> counters;
  std::map<std::tuple<int, std::string, std::string>, std::uint64_t> instants;

  for (const TraceEvent& event : events) {
    const auto key = std::make_tuple(pid_of(event), std::string(event.category),
                                     std::string(event.name));
    switch (event.phase) {
      case 'X': {
        SpanAgg& agg = spans[key];
        ++agg.count;
        agg.total_us += event.dur_us;
        agg.max_us = std::max(agg.max_us, event.dur_us);
        break;
      }
      case 'C':
        counters[key] = event.counter_value;  // last sample wins
        break;
      case 'i':
        ++instants[key];
        break;
      default:
        break;
    }
  }

  std::string out;
  char line[192];
  auto domain_tag = [](int pid) { return pid == kWallPid ? "wall" : "sim"; };

  std::snprintf(line, sizeof(line), "%-5s %-14s %-28s %10s %14s %14s\n",
                "clock", "category", "span", "count", "total(ms)", "max(ms)");
  out += line;
  for (const auto& [key, agg] : spans) {
    std::snprintf(line, sizeof(line),
                  "%-5s %-14s %-28s %10llu %14.3f %14.3f\n",
                  domain_tag(std::get<0>(key)), std::get<1>(key).c_str(),
                  std::get<2>(key).c_str(),
                  static_cast<unsigned long long>(agg.count),
                  agg.total_us / 1e3, agg.max_us / 1e3);
    out += line;
  }
  if (!counters.empty()) {
    std::snprintf(line, sizeof(line), "%-5s %-14s %-28s %25s\n", "clock",
                  "category", "counter", "last value");
    out += line;
    for (const auto& [key, value] : counters) {
      std::snprintf(line, sizeof(line), "%-5s %-14s %-28s %25.3f\n",
                    domain_tag(std::get<0>(key)), std::get<1>(key).c_str(),
                    std::get<2>(key).c_str(), value);
      out += line;
    }
  }
  if (!instants.empty()) {
    std::snprintf(line, sizeof(line), "%-5s %-14s %-28s %25s\n", "clock",
                  "category", "event", "count");
    out += line;
    for (const auto& [key, count] : instants) {
      std::snprintf(line, sizeof(line), "%-5s %-14s %-28s %25llu\n",
                    domain_tag(std::get<0>(key)), std::get<1>(key).c_str(),
                    std::get<2>(key).c_str(),
                    static_cast<unsigned long long>(count));
      out += line;
    }
  }
  if (dropped_events != 0) {
    std::snprintf(line, sizeof(line),
                  "WARNING: %llu events dropped (ring wrap-around); "
                  "totals above under-count\n",
                  static_cast<unsigned long long>(dropped_events));
    out += line;
  }
  return out;
}

}  // namespace slider::obs
