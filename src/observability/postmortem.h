// Post-mortem file format and reader.
//
// A flight-recorder dump is a single CRC-framed file, reusing the
// durability tier's manifest framing conventions (durability/checkpoint.h):
//
//   "SLIDRPMJ" [u32 version] [u32 crc32c(json)] [u64 json_size] [json]
//
// where `json` is one UTF-8 JSON document (schema: docs/observability.md).
// The frame makes truncation and corruption detectable — a post-mortem
// that lies is worse than none — and the file carries the .pm.json suffix
// so the payload is still one `tail -c +24` away from any JSON tool.
//
// This header also hosts the repo's minimal JSON reader (the repo's other
// JSON machinery is write-only): a strict recursive-descent parser into a
// JsonValue tree, sufficient for the doctor CLI and round-trip tests.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace slider::obs {

inline constexpr std::string_view kPostmortemMagic = "SLIDRPMJ";
inline constexpr std::uint32_t kPostmortemVersion = 1;

// --- minimal JSON reader -----------------------------------------------------

class JsonValue {
 public:
  enum class Type : std::uint8_t {
    kNull, kBool, kNumber, kString, kArray, kObject,
  };

  using Array = std::vector<JsonValue>;
  using Object = std::map<std::string, JsonValue>;

  JsonValue() = default;
  explicit JsonValue(bool b) : type_(Type::kBool), bool_(b) {}
  explicit JsonValue(double n) : type_(Type::kNumber), number_(n) {}
  explicit JsonValue(std::string s)
      : type_(Type::kString), string_(std::move(s)) {}
  explicit JsonValue(Array a) : type_(Type::kArray), array_(std::move(a)) {}
  explicit JsonValue(Object o) : type_(Type::kObject), object_(std::move(o)) {}

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_object() const { return type_ == Type::kObject; }
  bool is_array() const { return type_ == Type::kArray; }

  bool as_bool(bool fallback = false) const {
    return type_ == Type::kBool ? bool_ : fallback;
  }
  double as_double(double fallback = 0) const {
    return type_ == Type::kNumber ? number_ : fallback;
  }
  std::uint64_t as_u64(std::uint64_t fallback = 0) const {
    return type_ == Type::kNumber ? static_cast<std::uint64_t>(number_)
                                  : fallback;
  }
  const std::string& as_string() const { return string_; }

  const Array& items() const { return array_; }
  const Object& members() const { return object_; }

  // Object member lookup; null-typed reference when absent or not an
  // object, so lookups chain without null checks.
  const JsonValue& operator[](std::string_view key) const;

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0;
  std::string string_;
  Array array_;
  Object object_;
};

// Strict parse of one complete JSON document (trailing garbage fails).
// std::nullopt on any syntax error.
std::optional<JsonValue> parse_json(std::string_view text);

// --- framing -----------------------------------------------------------------

// Frames `json` per the header comment (magic + version + crc + size).
std::string frame_postmortem(std::string_view json);

struct PostmortemFile {
  std::uint32_t version = 0;
  std::string json;  // the raw payload
  JsonValue root;    // parsed payload
};

// Loads and validates a dump: magic, version, size, CRC, then JSON parse.
// std::nullopt (with a log line) on any failure.
std::optional<PostmortemFile> read_postmortem(const std::string& path);

}  // namespace slider::obs
