#include "observability/flight_recorder.h"

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "common/logging.h"
#include "observability/json_writer.h"
#include "observability/postmortem.h"
#include "observability/provenance.h"
#include "observability/timeseries.h"
#include "observability/trace.h"
#include "observability/trace_export.h"
#include "observability/work_ledger.h"

namespace slider::obs {

namespace {

// Atomic frame write, same discipline as checkpoint manifests: tmp file +
// fsync + rename, so a reader never sees a torn dump.
bool write_frame_atomic(const std::string& path, std::string_view frame) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return false;
  bool ok = std::fwrite(frame.data(), 1, frame.size(), f) == frame.size();
  if (ok) ::fsync(fileno(f));
  ok = (std::fclose(f) == 0) && ok;
  std::error_code ec;
  if (!ok) {
    std::filesystem::remove(tmp, ec);
    return false;
  }
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::filesystem::remove(tmp, ec);
    return false;
  }
  return true;
}

}  // namespace

FlightRecorder::FlightRecorder() = default;

FlightRecorder& FlightRecorder::global() {
  static FlightRecorder* recorder = [] {
    auto* r = new FlightRecorder();
    const char* dir = std::getenv("SLIDER_POSTMORTEM_DIR");
    if (dir != nullptr && *dir != '\0') {
      Options options;
      options.directory = dir;
      r->arm(std::move(options));
    }
    return r;
  }();
  return *recorder;
}

void FlightRecorder::arm(Options options) {
  std::lock_guard<std::mutex> lock(mutex_);
  options_ = std::move(options);
  options_.fault_log_capacity =
      std::max<std::size_t>(1, options_.fault_log_capacity);
  slide_ticks_ = 0;
  last_dump_tick_ = 0;
  dumped_once_ = false;
  dumps_written_ = 0;
  while (fault_log_.size() > options_.fault_log_capacity) {
    fault_log_.pop_front();
  }
}

bool FlightRecorder::armed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return !options_.directory.empty();
}

void FlightRecorder::note_fault(std::string_view kind, std::string_view detail,
                                double sim_time, std::int64_t machine,
                                bool request_dump) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (fault_log_.size() >= options_.fault_log_capacity) {
    fault_log_.pop_front();
  }
  fault_log_.push_back(FaultNote{sim_time, std::string(kind),
                                 std::string(detail), machine});
  if (request_dump && !pending_) {
    pending_ = true;
    pending_reason_ = std::string(kind);
  }
}

void FlightRecorder::request_dump(std::string_view reason) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!pending_) {
    pending_ = true;
    pending_reason_ = std::string(reason);
  }
}

std::string FlightRecorder::maybe_dump(const DumpContext& context) {
  std::unique_lock<std::mutex> lock(mutex_);
  ++slide_ticks_;
  if (!pending_ || options_.directory.empty()) return "";
  if (dumps_written_ >= options_.max_dumps) {
    // Budget exhausted: drop the pending flag so the check stays cheap.
    pending_ = false;
    return "";
  }
  if (dumped_once_ &&
      slide_ticks_ - last_dump_tick_ < options_.min_slides_between_dumps) {
    return "";  // stays pending; fires once the spacing allows
  }
  const std::string reason = pending_reason_;
  pending_ = false;
  pending_reason_.clear();
  last_dump_tick_ = slide_ticks_;
  dumped_once_ = true;
  return write_dump_locked(reason, context);
}

std::string FlightRecorder::dump_now(std::string_view reason,
                                     const DumpContext& context) {
  std::unique_lock<std::mutex> lock(mutex_);
  if (options_.directory.empty()) return "";
  if (dumps_written_ >= options_.max_dumps) return "";
  pending_ = false;
  pending_reason_.clear();
  last_dump_tick_ = slide_ticks_;
  dumped_once_ = true;
  return write_dump_locked(reason, context);
}

// Requires mutex_ held. Global snapshots (TimeSeries / WorkLedger /
// TraceCollector) only take those subsystems' own locks — none of them
// ever calls back into the recorder, so the hold is deadlock-free.
std::string FlightRecorder::write_dump_locked(std::string_view reason,
                                              const DumpContext& context) {
  std::error_code ec;
  std::filesystem::create_directories(options_.directory, ec);
  if (ec) {
    SLIDER_LOG(Warning) << "flight recorder: cannot create "
                        << options_.directory << ": " << ec.message();
    return "";
  }

  JsonWriter json;
  json.begin_object();
  json.key("schema_version").value(std::uint64_t{1});
  json.key("reason").value(reason);
  json.key("session").value(context.session);
  json.key("sim_time").value(context.sim_time);
  if (context.verdicts != nullptr) {
    json.key("slo").raw(slo_verdicts_to_json(*context.verdicts));
  } else {
    json.key("slo").begin_array().end_array();
  }
  json.key("faults").begin_array();
  for (const FaultNote& note : fault_log_) {
    json.begin_object();
    json.key("sim_time").value(note.sim_time);
    json.key("kind").value(note.kind);
    json.key("detail").value(note.detail);
    json.key("machine").value(static_cast<std::int64_t>(note.machine));
    json.end_object();
  }
  json.end_array();
  json.key("timeseries").raw(TimeSeries::global().to_json());
  json.key("ledger").raw(WorkLedger::global().to_json());
  if (context.provenance != nullptr) {
    // snapshot() only takes the recorder's own mutex; like the global
    // snapshots above it never calls back into the flight recorder.
    json.key("provenance")
        .raw(provenance_to_json(context.provenance->snapshot()));
  }
  {
    TraceCollector& trace = TraceCollector::global();
    const std::vector<TraceEvent> events = trace.snapshot();
    json.key("trace").raw(to_chrome_trace_json(events, trace.dropped()));
  }
  json.end_object();

  const std::uint64_t n = dump_counter_++;
  const std::string path = options_.directory + "/pm_" +
                           std::to_string(::getpid()) + "_" +
                           std::to_string(n) + ".pm.json";
  if (!write_frame_atomic(path, frame_postmortem(json.str()))) {
    SLIDER_LOG(Warning) << "flight recorder: dump write failed: " << path;
    return "";
  }
  ++dumps_written_;
  SLIDER_LOG(Info) << "flight recorder: wrote " << path << " (" << reason
                   << ")";
  return path;
}

std::uint64_t FlightRecorder::dumps_written() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dumps_written_;
}

std::vector<FaultNote> FlightRecorder::fault_log() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return std::vector<FaultNote>(fault_log_.begin(), fault_log_.end());
}

void FlightRecorder::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  options_ = Options{};
  options_.directory.clear();
  fault_log_.clear();
  pending_ = false;
  pending_reason_.clear();
  slide_ticks_ = 0;
  last_dump_tick_ = 0;
  dumped_once_ = false;
  dumps_written_ = 0;
  dump_counter_ = 0;
}

}  // namespace slider::obs
