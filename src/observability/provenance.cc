#include "observability/provenance.h"

#include <algorithm>
#include <cstdlib>
#include <unordered_map>
#include <unordered_set>

#include "common/hash.h"
#include "data/record.h"
#include "observability/json_writer.h"
#include "observability/postmortem.h"

namespace slider::obs {

std::string_view lineage_op_name(LineageOp op) {
  switch (op) {
    case LineageOp::kLeaf: return "leaf";
    case LineageOp::kMerge: return "merge";
    case LineageOp::kPassthrough: return "passthrough";
    case LineageOp::kReuse: return "reuse";
  }
  return "unknown";
}

std::string_view disposition_name(LineageOp op, WorkCause cause) {
  if (op == LineageOp::kReuse) return "reused";
  switch (cause) {
    case WorkCause::kInitialBuild: return "new";
    case WorkCause::kWindowAdd:
      // A genuinely new payload entering the window is "new"; combiner
      // work re-run on the update path is "recomputed".
      return op == LineageOp::kLeaf ? "new" : "recomputed";
    case WorkCause::kWindowRemove: return "recomputed";
    case WorkCause::kMemoEvictionRecompute: return "evicted_recompute";
    case WorkCause::kRecoveryReplay: return "recovery_replay";
    case WorkCause::kBackgroundPreprocess: return "background";
    case WorkCause::kSpeculativeReexec: return "speculative";
    case WorkCause::kFailureReexec: return "failure_reexec";
    case WorkCause::kScrubRepair: return "scrub_repair";
  }
  return "recomputed";
}

// --- KeySketch ---------------------------------------------------------------

namespace {

void bloom_set(std::array<std::uint64_t, 4>& bloom, std::uint64_t h) {
  const std::uint64_t p1 = h & 255;
  const std::uint64_t p2 = mix64(h) & 255;
  bloom[p1 >> 6] |= std::uint64_t{1} << (p1 & 63);
  bloom[p2 >> 6] |= std::uint64_t{1} << (p2 & 63);
}

bool bloom_test(const std::array<std::uint64_t, 4>& bloom, std::uint64_t h) {
  const std::uint64_t p1 = h & 255;
  const std::uint64_t p2 = mix64(h) & 255;
  return (bloom[p1 >> 6] & (std::uint64_t{1} << (p1 & 63))) != 0 &&
         (bloom[p2 >> 6] & (std::uint64_t{1} << (p2 & 63))) != 0;
}

}  // namespace

void KeySketch::add_hash(std::uint64_t h) {
  bloom_set(bloom, h);
  if (exact_count <= kSketchExactCap) {
    for (std::uint32_t i = 0; i < std::min(exact_count, kSketchExactCap); ++i) {
      if (exact[i] == h) return;
    }
    if (exact_count < kSketchExactCap) {
      exact[exact_count] = h;
    }
    ++exact_count;  // past the cap this is the bloom-only sentinel
  }
}

void KeySketch::merge(const KeySketch& other) {
  if (other.exact_count == 0) return;
  if (is_exact() && other.is_exact()) {
    for (std::uint32_t i = 0; i < other.exact_count; ++i) {
      add_hash(other.exact[i]);
    }
    return;
  }
  for (std::size_t w = 0; w < bloom.size(); ++w) bloom[w] |= other.bloom[w];
  exact_count = kSketchExactCap + 1;
}

bool KeySketch::may_contain_hash(std::uint64_t h) const {
  if (is_exact()) {
    for (std::uint32_t i = 0; i < exact_count; ++i) {
      if (exact[i] == h) return true;
    }
    return false;
  }
  return bloom_test(bloom, h);
}

KeySketch sketch_of_table(const KVTable& table) {
  KeySketch sketch;
  for (const Record& row : table.rows()) {
    sketch.add_hash(hash_string(row.key));
  }
  return sketch;
}

// --- SketchCache -------------------------------------------------------------

struct SketchCache::Shard {
  mutable std::mutex mutex;
  std::unordered_map<std::uint64_t, KeySketch> map;
};

SketchCache::SketchCache() : shards_(new Shard[kShards]) {}

SketchCache& SketchCache::global() {
  static SketchCache* cache = new SketchCache();
  return *cache;
}

bool SketchCache::lookup(std::uint64_t id, KeySketch* out) const {
  Shard& shard = shards_[mix64(id) % kShards];
  std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.map.find(id);
  if (it == shard.map.end()) return false;
  *out = it->second;
  return true;
}

void SketchCache::store(std::uint64_t id, const KeySketch& sketch) {
  Shard& shard = shards_[mix64(id) % kShards];
  std::lock_guard<std::mutex> lock(shard.mutex);
  if (shard.map.size() >= kMaxEntriesPerShard &&
      shard.map.find(id) == shard.map.end()) {
    shard.map.erase(shard.map.begin());  // advisory cache: drop anything
  }
  shard.map[id] = sketch;
}

void SketchCache::clear() {
  for (std::size_t i = 0; i < kShards; ++i) {
    std::lock_guard<std::mutex> lock(shards_[i].mutex);
    shards_[i].map.clear();
  }
}

// --- slide assembly ----------------------------------------------------------

void LineageAggregate::fold(const SlideLineage& slide) {
  if (count == 0) first_sequence = slide.sequence;
  ++count;
  for (std::size_t c = 0; c < kWorkCauseCount; ++c) {
    cause_invocations[c] += slide.cause_invocations[c];
    cause_nodes[c] += slide.cause_nodes[c];
  }
  reused_nodes += slide.reused_nodes;
  recorded_nodes += slide.recorded_nodes;
  critical_path_seconds_max =
      std::max(critical_path_seconds_max, slide.critical_path_seconds);
}

namespace {

double node_seconds(const NodeLineage& node, const LineageCostParams& costs) {
  return costs.combine_cpu_per_row * static_cast<double>(node.rows_scanned) +
         costs.memo_lookup_sec + node.memo_cost;
}

}  // namespace

SlideLineage assemble_slide_lineage(RunKind kind, std::string_view tenant,
                                    double sim_start,
                                    std::vector<std::vector<NodeLineage>> partitions,
                                    const LineageCostParams& costs) {
  SlideLineage slide;
  slide.kind = kind;
  slide.tenant.assign(tenant);
  slide.sim_start = sim_start;
  slide.partitions = std::move(partitions);

  for (int p = 0; p < static_cast<int>(slide.partitions.size()); ++p) {
    const std::vector<NodeLineage>& records = slide.partitions[p];
    slide.recorded_nodes += records.size();

    // Longest sim-time chain. Records arrive children-before-parents, so
    // one forward pass suffices: best[id] holds the costliest chain that
    // ends at a record producing `id` so far. Children are resolved
    // before this record overwrites its own id, which keeps passthrough
    // chains (record id == child id) extending instead of self-looping.
    struct Chain {
      double total = 0;
      std::ptrdiff_t record = -1;
    };
    std::unordered_map<std::uint64_t, Chain> best;
    std::vector<double> totals(records.size(), 0);
    std::vector<std::ptrdiff_t> pred(records.size(), -1);
    double part_best = 0;
    std::ptrdiff_t part_terminus = -1;

    for (std::size_t i = 0; i < records.size(); ++i) {
      const NodeLineage& r = records[i];
      const std::size_t c = static_cast<std::size_t>(r.cause);
      if (c < kWorkCauseCount) {
        slide.cause_invocations[c] += r.invocations;
        if (r.op != LineageOp::kReuse) ++slide.cause_nodes[c];
      }
      if (r.op == LineageOp::kReuse) ++slide.reused_nodes;

      double base = 0;
      std::ptrdiff_t via = -1;
      for (const std::uint64_t child : r.children) {
        const auto it = best.find(child);
        if (it != best.end() && it->second.total > base) {
          base = it->second.total;
          via = it->second.record;
        }
      }
      totals[i] = base + node_seconds(r, costs);
      pred[i] = via;
      auto& chain = best[r.id];
      if (chain.record < 0 || totals[i] > chain.total) {
        chain = Chain{totals[i], static_cast<std::ptrdiff_t>(i)};
      }
      if (totals[i] > part_best) {
        part_best = totals[i];
        part_terminus = static_cast<std::ptrdiff_t>(i);
      }
    }

    if (part_terminus >= 0 && part_best > slide.critical_path_seconds) {
      slide.critical_path_seconds = part_best;
      slide.critical_path_partition = p;
      slide.critical_path.clear();
      for (std::ptrdiff_t i = part_terminus; i >= 0; i = pred[i]) {
        const NodeLineage& r = records[i];
        slide.critical_path.push_back(PathNode{
            r.id, r.level, r.op, r.cause, node_seconds(r, costs)});
      }
    }
  }
  return slide;
}

// --- explain -----------------------------------------------------------------

Explanation explain_slide(const SlideLineage& slide, std::string_view key,
                          int partition) {
  Explanation ex;
  ex.sequence = slide.sequence;
  ex.kind = slide.kind;
  ex.tenant = slide.tenant;
  ex.partition = partition;
  ex.key.assign(key);
  if (partition < 0 ||
      partition >= static_cast<int>(slide.partitions.size())) {
    return ex;
  }
  const std::vector<NodeLineage>& records = slide.partitions[partition];
  const std::uint64_t h = hash_string(ex.key);

  // All records per node id, in append (children-before-parents) order.
  // One id can carry several records: a memo miss emits a reuse + a
  // recompute pair, and passthrough chains keep the child's id across
  // levels. Resolution rules live in `resolve` below.
  std::unordered_map<std::uint64_t, std::vector<std::size_t>> by_id;
  for (std::size_t i = 0; i < records.size(); ++i) {
    by_id[records[i].id].push_back(i);
  }
  // Resolves the record a child edge of records[from] points at, or -1.
  // A self-id edge (passthrough) binds to the latest record of the same
  // id *before* the referencing one; any other edge prefers executed
  // records (they shadow the reuse of a memo miss), latest first.
  const auto resolve = [&](std::uint64_t child,
                           std::size_t from) -> std::ptrdiff_t {
    const auto it = by_id.find(child);
    if (it == by_id.end()) return -1;
    if (child == records[from].id) {
      std::ptrdiff_t prior = -1;
      for (const std::size_t idx : it->second) {
        if (idx >= from) break;
        prior = static_cast<std::ptrdiff_t>(idx);
      }
      return prior;
    }
    std::ptrdiff_t any = -1, executed = -1;
    for (const std::size_t idx : it->second) {
      any = static_cast<std::ptrdiff_t>(idx);
      if (records[idx].op != LineageOp::kReuse) {
        executed = static_cast<std::ptrdiff_t>(idx);
      }
    }
    return executed >= 0 ? executed : any;
  };

  // Apex: the highest-level record whose payload may contain the key —
  // the point where this output last surfaced in the DAG.
  std::ptrdiff_t apex = -1;
  for (std::size_t i = 0; i < records.size(); ++i) {
    if (!records[i].sketch.may_contain_hash(h)) continue;
    if (apex < 0 || records[i].level > records[apex].level ||
        (records[i].level == records[apex].level &&
         static_cast<std::ptrdiff_t>(i) > apex)) {
      apex = static_cast<std::ptrdiff_t>(i);
    }
  }
  if (apex < 0) return ex;

  ex.found = true;
  ex.apex = records[apex].id;
  ex.apex_level = records[apex].level;

  std::vector<std::size_t> stack{static_cast<std::size_t>(apex)};
  std::unordered_set<std::size_t> visited;
  std::unordered_set<std::uint64_t> frontier_ids;
  while (!stack.empty()) {
    const std::size_t i = stack.back();
    stack.pop_back();
    if (!visited.insert(i).second) continue;
    const NodeLineage& r = records[i];
    ++ex.walked_nodes;
    if (!r.sketch.is_exact()) ex.exact = false;

    bool is_frontier = false;
    if (r.op == LineageOp::kReuse || r.children.empty()) {
      is_frontier = true;
    } else {
      std::size_t descended = 0;
      for (const std::uint64_t child : r.children) {
        const std::ptrdiff_t target = resolve(child, i);
        if (target < 0) {
          if (child != r.id) ++ex.untouched_children;
          continue;
        }
        if (records[target].sketch.may_contain_hash(h)) {
          stack.push_back(static_cast<std::size_t>(target));
          ++descended;
        }
      }
      // The key came in through an edge this slide never re-executed:
      // this node is the deepest recorded explanation.
      if (descended == 0) is_frontier = true;
    }

    if (is_frontier && frontier_ids.insert(r.id).second) {
      ExplainEntry entry;
      entry.id = r.id;
      entry.level = r.level;
      entry.op = r.op;
      entry.cause = r.cause;
      entry.disposition = std::string(disposition_name(r.op, r.cause));
      entry.rows = r.rows;
      entry.invocations = r.invocations;
      entry.exact = r.sketch.is_exact();
      ex.frontier.push_back(std::move(entry));
    }
  }
  std::sort(ex.frontier.begin(), ex.frontier.end(),
            [](const ExplainEntry& a, const ExplainEntry& b) {
              if (a.level != b.level) return a.level < b.level;
              return a.id < b.id;
            });
  return ex;
}

std::unordered_map<std::uint64_t, std::string> disposition_map(
    const SlideLineage& slide, int partition) {
  std::unordered_map<std::uint64_t, std::string> map;
  if (partition < 0 ||
      partition >= static_cast<int>(slide.partitions.size())) {
    return map;
  }
  for (const NodeLineage& r : slide.partitions[partition]) {
    // Append order puts the executed record of a memo-miss pair (and the
    // passthrough atop a fresh leaf) after its counterpart, so last-wins
    // reports what the slide ultimately did at this node.
    map[r.id] = std::string(disposition_name(r.op, r.cause));
  }
  return map;
}

// --- recorder ----------------------------------------------------------------

ProvenanceRecorder::ProvenanceRecorder() : ProvenanceRecorder(Options{}) {}

ProvenanceRecorder::ProvenanceRecorder(Options options) { configure(options); }

void ProvenanceRecorder::configure(Options options) {
  std::lock_guard<std::mutex> lock(mutex_);
  options_ = options;
  options_.raw_capacity = std::max<std::size_t>(1, options_.raw_capacity);
  options_.aggregate_width =
      std::max<std::size_t>(1, options_.aggregate_width);
  options_.aggregate_capacity =
      std::max<std::size_t>(1, options_.aggregate_capacity);
  raw_.assign(options_.raw_capacity, SlideLineage{});
  aggregates_.assign(options_.aggregate_capacity, LineageAggregate{});
  raw_start_ = raw_size_ = 0;
  agg_start_ = agg_size_ = 0;
  open_bucket_ = LineageAggregate{};
  open_bucket_active_ = false;
  next_sequence_ = 0;
  samples_dropped_ = 0;
}

void ProvenanceRecorder::reset() {
  Options options;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    options = options_;
  }
  configure(options);
}

void ProvenanceRecorder::record(SlideLineage slide) {
  std::lock_guard<std::mutex> lock(mutex_);
  slide.sequence = next_sequence_++;
  if (raw_size_ == raw_.size()) {
    // Oldest raw slide ages out: its DAG is dropped but its tallies fold
    // into the open aggregation bucket (timeseries.cc discipline).
    const SlideLineage& evicted = raw_[raw_start_];
    open_bucket_.fold(evicted);
    open_bucket_active_ = true;
    if (open_bucket_.count >= options_.aggregate_width) {
      if (agg_size_ == aggregates_.size()) {
        samples_dropped_ += aggregates_[agg_start_].count;
        agg_start_ = (agg_start_ + 1) % aggregates_.size();
        --agg_size_;
      }
      aggregates_[(agg_start_ + agg_size_) % aggregates_.size()] = open_bucket_;
      ++agg_size_;
      open_bucket_ = LineageAggregate{};
      open_bucket_active_ = false;
    }
    raw_[raw_start_] = SlideLineage{};  // free the evicted DAG eagerly
    raw_start_ = (raw_start_ + 1) % raw_.size();
    --raw_size_;
  }
  raw_[(raw_start_ + raw_size_) % raw_.size()] = std::move(slide);
  ++raw_size_;
}

std::uint64_t ProvenanceRecorder::total_recorded() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return next_sequence_;
}

ProvenanceSnapshot ProvenanceRecorder::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  ProvenanceSnapshot snap;
  snap.total_recorded = next_sequence_;
  snap.samples_dropped = samples_dropped_;
  snap.aggregates.reserve(agg_size_ + 1);
  for (std::size_t i = 0; i < agg_size_; ++i) {
    snap.aggregates.push_back(aggregates_[(agg_start_ + i) % aggregates_.size()]);
  }
  if (open_bucket_active_) snap.aggregates.push_back(open_bucket_);
  snap.raw.reserve(raw_size_);
  for (std::size_t i = 0; i < raw_size_; ++i) {
    snap.raw.push_back(raw_[(raw_start_ + i) % raw_.size()]);
  }
  return snap;
}

Explanation ProvenanceRecorder::explain(
    std::string_view key, int partition,
    std::optional<std::uint64_t> sequence) const {
  SlideLineage slide;
  bool have = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (std::size_t i = raw_size_; i-- > 0;) {
      const SlideLineage& candidate = raw_[(raw_start_ + i) % raw_.size()];
      if (sequence.has_value()) {
        if (candidate.sequence != *sequence) continue;
      } else if (partition < 0 ||
                 partition >= static_cast<int>(candidate.partitions.size()) ||
                 candidate.partitions[partition].empty()) {
        continue;  // default: newest slide that touched this partition
      }
      slide = candidate;
      have = true;
      break;
    }
  }
  if (!have) {
    Explanation ex;
    ex.partition = partition;
    ex.key.assign(key);
    return ex;
  }
  return explain_slide(slide, key, partition);
}

// --- serialization -----------------------------------------------------------

namespace {

std::string u64_string(std::uint64_t v) { return std::to_string(v); }

void write_sparse_causes(JsonWriter& json, const char* key,
                         const std::array<std::uint64_t, kWorkCauseCount>& a) {
  json.key(key).begin_object();
  for (std::size_t c = 0; c < kWorkCauseCount; ++c) {
    if (a[c] == 0) continue;
    json.key(work_cause_name(static_cast<WorkCause>(c))).value(a[c]);
  }
  json.end_object();
}

void write_sketch(JsonWriter& json, const KeySketch& sketch) {
  json.key("sketch").begin_object();
  if (sketch.is_exact()) {
    json.key("exact").begin_array();
    for (std::uint32_t i = 0; i < sketch.exact_count; ++i) {
      json.value(u64_string(sketch.exact[i]));
    }
    json.end_array();
  } else {
    json.key("bloom").begin_array();
    for (const std::uint64_t word : sketch.bloom) {
      json.value(u64_string(word));
    }
    json.end_array();
  }
  json.end_object();
}

void write_node(JsonWriter& json, const NodeLineage& node) {
  json.begin_object();
  json.key("id").value(u64_string(node.id));
  json.key("op").value(lineage_op_name(node.op));
  json.key("cause").value(work_cause_name(node.cause));
  json.key("level").value(std::uint64_t{node.level});
  json.key("invocations").value(std::uint64_t{node.invocations});
  json.key("rows").value(node.rows);
  json.key("rows_scanned").value(node.rows_scanned);
  json.key("memo_cost").value(node.memo_cost);
  json.key("children").begin_array();
  for (const std::uint64_t child : node.children) {
    json.value(u64_string(child));
  }
  json.end_array();
  if (node.children_truncated) json.key("children_truncated").value(true);
  write_sketch(json, node.sketch);
  json.end_object();
}

void write_path(JsonWriter& json, const char* key,
                const std::vector<PathNode>& path) {
  json.key(key).begin_array();
  for (const PathNode& n : path) {
    json.begin_object();
    json.key("id").value(u64_string(n.id));
    json.key("level").value(std::uint64_t{n.level});
    json.key("op").value(lineage_op_name(n.op));
    json.key("cause").value(work_cause_name(n.cause));
    json.key("seconds").value(n.seconds);
    json.end_object();
  }
  json.end_array();
}

void write_slide_header(JsonWriter& json, const SlideLineage& s) {
  json.key("sequence").value(s.sequence);
  json.key("kind").value(run_kind_name(s.kind));
  if (!s.tenant.empty()) json.key("tenant").value(s.tenant);
  json.key("sim_start").value(s.sim_start);
  write_sparse_causes(json, "cause_invocations", s.cause_invocations);
  write_sparse_causes(json, "cause_nodes", s.cause_nodes);
  json.key("reused_nodes").value(s.reused_nodes);
  json.key("recorded_nodes").value(s.recorded_nodes);
  json.key("critical_path_seconds").value(s.critical_path_seconds);
  json.key("critical_path_partition")
      .value(static_cast<std::int64_t>(s.critical_path_partition));
  write_path(json, "critical_path", s.critical_path);
}

std::uint64_t parse_u64_string(const JsonValue& v) {
  if (v.type() == JsonValue::Type::kNumber) return v.as_u64();
  return std::strtoull(v.as_string().c_str(), nullptr, 10);
}

template <typename NameFn>
int index_of_name(const std::string& name, int count, NameFn name_of) {
  for (int i = 0; i < count; ++i) {
    if (name == name_of(i)) return i;
  }
  return 0;
}

WorkCause parse_cause(const std::string& name) {
  return static_cast<WorkCause>(index_of_name(
      name, static_cast<int>(kWorkCauseCount), [](int i) {
        return work_cause_name(static_cast<WorkCause>(i));
      }));
}

LineageOp parse_op(const std::string& name) {
  return static_cast<LineageOp>(index_of_name(name, 4, [](int i) {
    return lineage_op_name(static_cast<LineageOp>(i));
  }));
}

RunKind parse_kind(const std::string& name) {
  return static_cast<RunKind>(index_of_name(name, 3, [](int i) {
    return run_kind_name(static_cast<RunKind>(i));
  }));
}

void parse_causes(const JsonValue& obj,
                  std::array<std::uint64_t, kWorkCauseCount>& out) {
  for (const auto& [name, count] : obj.members()) {
    out[static_cast<std::size_t>(parse_cause(name))] = count.as_u64();
  }
}

}  // namespace

std::string provenance_to_json(const ProvenanceSnapshot& snapshot) {
  JsonWriter json;
  json.begin_object();
  json.key("schema_version").value(std::uint64_t{1});
  json.key("total_recorded").value(snapshot.total_recorded);
  json.key("samples_dropped").value(snapshot.samples_dropped);
  json.key("aggregates").begin_array();
  for (const LineageAggregate& a : snapshot.aggregates) {
    json.begin_object();
    json.key("first_sequence").value(a.first_sequence);
    json.key("count").value(a.count);
    write_sparse_causes(json, "cause_invocations", a.cause_invocations);
    write_sparse_causes(json, "cause_nodes", a.cause_nodes);
    json.key("reused_nodes").value(a.reused_nodes);
    json.key("recorded_nodes").value(a.recorded_nodes);
    json.key("critical_path_seconds_max").value(a.critical_path_seconds_max);
    json.end_object();
  }
  json.end_array();
  json.key("raw").begin_array();
  for (const SlideLineage& s : snapshot.raw) {
    json.begin_object();
    write_slide_header(json, s);
    json.key("partitions").begin_array();
    for (const std::vector<NodeLineage>& part : s.partitions) {
      json.begin_array();
      for (const NodeLineage& node : part) write_node(json, node);
      json.end_array();
    }
    json.end_array();
    json.end_object();
  }
  json.end_array();
  json.end_object();
  return json.take();
}

std::string criticalpath_to_json(const ProvenanceSnapshot& snapshot) {
  double max_seconds = 0;
  for (const SlideLineage& s : snapshot.raw) {
    max_seconds = std::max(max_seconds, s.critical_path_seconds);
  }
  JsonWriter json;
  json.begin_object();
  json.key("schema_version").value(std::uint64_t{1});
  json.key("total_recorded").value(snapshot.total_recorded);
  json.key("max_seconds").value(max_seconds);
  json.key("slides").begin_array();
  for (const SlideLineage& s : snapshot.raw) {
    json.begin_object();
    write_slide_header(json, s);
    json.end_object();
  }
  json.end_array();
  json.end_object();
  return json.take();
}

std::string explanation_to_json(const Explanation& ex) {
  std::unordered_map<std::string_view, std::uint64_t> counts;
  for (const ExplainEntry& e : ex.frontier) ++counts[e.disposition];
  JsonWriter json;
  json.begin_object();
  json.key("found").value(ex.found);
  json.key("key").value(ex.key);
  json.key("sequence").value(ex.sequence);
  json.key("kind").value(run_kind_name(ex.kind));
  if (!ex.tenant.empty()) json.key("tenant").value(ex.tenant);
  json.key("partition").value(static_cast<std::int64_t>(ex.partition));
  json.key("apex").value(u64_string(ex.apex));
  json.key("apex_level").value(std::uint64_t{ex.apex_level});
  json.key("exact").value(ex.exact);
  json.key("walked_nodes").value(ex.walked_nodes);
  json.key("untouched_children").value(ex.untouched_children);
  json.key("counts").begin_object();
  for (const char* name :
       {"reused", "new", "recomputed", "evicted_recompute", "failure_reexec",
        "recovery_replay", "background", "speculative"}) {
    const auto it = counts.find(name);
    if (it != counts.end()) json.key(name).value(it->second);
  }
  json.end_object();
  json.key("frontier").begin_array();
  for (const ExplainEntry& e : ex.frontier) {
    json.begin_object();
    json.key("id").value(u64_string(e.id));
    json.key("level").value(std::uint64_t{e.level});
    json.key("op").value(lineage_op_name(e.op));
    json.key("cause").value(work_cause_name(e.cause));
    json.key("disposition").value(e.disposition);
    json.key("rows").value(e.rows);
    json.key("invocations").value(std::uint64_t{e.invocations});
    json.key("exact").value(e.exact);
    json.end_object();
  }
  json.end_array();
  json.end_object();
  return json.take();
}

ProvenanceSnapshot provenance_from_json(const JsonValue& value) {
  ProvenanceSnapshot snap;
  snap.total_recorded = value["total_recorded"].as_u64();
  snap.samples_dropped = value["samples_dropped"].as_u64();
  for (const JsonValue& a : value["aggregates"].items()) {
    LineageAggregate agg;
    agg.first_sequence = a["first_sequence"].as_u64();
    agg.count = a["count"].as_u64();
    parse_causes(a["cause_invocations"], agg.cause_invocations);
    parse_causes(a["cause_nodes"], agg.cause_nodes);
    agg.reused_nodes = a["reused_nodes"].as_u64();
    agg.recorded_nodes = a["recorded_nodes"].as_u64();
    agg.critical_path_seconds_max = a["critical_path_seconds_max"].as_double();
    snap.aggregates.push_back(agg);
  }
  for (const JsonValue& s : value["raw"].items()) {
    SlideLineage slide;
    slide.sequence = s["sequence"].as_u64();
    slide.kind = parse_kind(s["kind"].as_string());
    slide.tenant = s["tenant"].as_string();
    slide.sim_start = s["sim_start"].as_double();
    parse_causes(s["cause_invocations"], slide.cause_invocations);
    parse_causes(s["cause_nodes"], slide.cause_nodes);
    slide.reused_nodes = s["reused_nodes"].as_u64();
    slide.recorded_nodes = s["recorded_nodes"].as_u64();
    slide.critical_path_seconds = s["critical_path_seconds"].as_double();
    slide.critical_path_partition =
        static_cast<int>(s["critical_path_partition"].as_double(-1));
    for (const JsonValue& n : s["critical_path"].items()) {
      PathNode node;
      node.id = parse_u64_string(n["id"]);
      node.level = static_cast<std::uint16_t>(n["level"].as_u64());
      node.op = parse_op(n["op"].as_string());
      node.cause = parse_cause(n["cause"].as_string());
      node.seconds = n["seconds"].as_double();
      slide.critical_path.push_back(node);
    }
    for (const JsonValue& part : s["partitions"].items()) {
      std::vector<NodeLineage> nodes;
      for (const JsonValue& n : part.items()) {
        NodeLineage node;
        node.id = parse_u64_string(n["id"]);
        node.op = parse_op(n["op"].as_string());
        node.cause = parse_cause(n["cause"].as_string());
        node.level = static_cast<std::uint16_t>(n["level"].as_u64());
        node.invocations = static_cast<std::uint32_t>(n["invocations"].as_u64());
        node.rows = n["rows"].as_u64();
        node.rows_scanned = n["rows_scanned"].as_u64();
        node.memo_cost = n["memo_cost"].as_double();
        node.children_truncated = n["children_truncated"].as_bool(false);
        for (const JsonValue& child : n["children"].items()) {
          node.children.push_back(parse_u64_string(child));
        }
        const JsonValue& sketch = n["sketch"];
        const JsonValue& exact = sketch["exact"];
        if (exact.is_array()) {
          for (const JsonValue& hash : exact.items()) {
            node.sketch.add_hash(parse_u64_string(hash));
          }
        } else {
          node.sketch.exact_count = kSketchExactCap + 1;
          const auto& words = sketch["bloom"].items();
          for (std::size_t w = 0; w < words.size() && w < 4; ++w) {
            node.sketch.bloom[w] = parse_u64_string(words[w]);
          }
        }
        nodes.push_back(std::move(node));
      }
      slide.partitions.push_back(std::move(nodes));
    }
    snap.raw.push_back(std::move(slide));
  }
  return snap;
}

}  // namespace slider::obs
