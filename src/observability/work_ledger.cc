#include "observability/work_ledger.h"

#include <atomic>

#include "observability/json_writer.h"

namespace slider::obs {

std::string_view work_cause_name(WorkCause cause) {
  switch (cause) {
    case WorkCause::kInitialBuild: return "initial_build";
    case WorkCause::kWindowAdd: return "window_add";
    case WorkCause::kWindowRemove: return "window_remove";
    case WorkCause::kMemoEvictionRecompute: return "memo_eviction_recompute";
    case WorkCause::kRecoveryReplay: return "recovery_replay";
    case WorkCause::kBackgroundPreprocess: return "background_preprocess";
    case WorkCause::kSpeculativeReexec: return "speculative_reexec";
    case WorkCause::kFailureReexec: return "failure_reexec";
    case WorkCause::kScrubRepair: return "scrub_repair";
  }
  return "unknown";
}

std::string_view run_kind_name(RunKind kind) {
  switch (kind) {
    case RunKind::kInitial: return "initial";
    case RunKind::kSlide: return "slide";
    case RunKind::kBackground: return "background";
  }
  return "unknown";
}

// Per-thread event cell. Monotonic relaxed atomics: the owning thread is
// the only writer; snapshot()/reset() read/clear from other threads.
struct WorkLedger::ThreadCell {
  std::atomic<std::uint64_t> eviction_forced_misses{0};
  std::atomic<std::uint64_t> budget_evictions{0};
  std::atomic<std::uint64_t> quota_evictions{0};
  std::atomic<std::uint64_t> recovered_entries{0};
  std::atomic<std::uint64_t> recovered_bytes{0};
  std::atomic<std::uint64_t> speculative_reexecutions{0};
  std::atomic<std::uint64_t> failure_forced_misses{0};
  std::atomic<std::uint64_t> failures_injected{0};
  std::atomic<std::uint64_t> task_retries{0};
  std::atomic<std::uint64_t> machines_blacklisted{0};
  std::atomic<std::uint64_t> degraded_mode_intervals{0};
  std::atomic<std::uint64_t> scrub_records_verified{0};
  std::atomic<std::uint64_t> scrub_corruptions_detected{0};
  std::atomic<std::uint64_t> scrub_repairs{0};
  std::atomic<std::uint64_t> scrub_quarantines{0};
};

WorkLedger::WorkLedger() = default;
WorkLedger::~WorkLedger() = default;

WorkLedger& WorkLedger::global() {
  // Leaked singleton: notes can arrive from detached pool threads during
  // process teardown.
  static WorkLedger* ledger = new WorkLedger();
  return *ledger;
}

WorkLedger::ThreadCell& WorkLedger::local_cell() {
  // One cell per (ledger, thread). The thread caches the pointer; the cell
  // itself lives in cells_ so it outlives the thread.
  thread_local struct Cache {
    WorkLedger* owner = nullptr;
    ThreadCell* cell = nullptr;
  } cache;
  if (cache.owner != this || cache.cell == nullptr) {
    auto cell = std::make_unique<ThreadCell>();
    ThreadCell* raw = cell.get();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      cells_.push_back(std::move(cell));
    }
    cache.owner = this;
    cache.cell = raw;
  }
  return *cache.cell;
}

void WorkLedger::note_eviction_forced_miss(std::uint64_t count) {
  local_cell().eviction_forced_misses.fetch_add(count,
                                                std::memory_order_relaxed);
}

void WorkLedger::note_budget_eviction(std::uint64_t count) {
  local_cell().budget_evictions.fetch_add(count, std::memory_order_relaxed);
}

void WorkLedger::note_quota_eviction(std::uint64_t count) {
  local_cell().quota_evictions.fetch_add(count, std::memory_order_relaxed);
}

void WorkLedger::note_recovery(std::uint64_t entries, std::uint64_t bytes) {
  ThreadCell& cell = local_cell();
  cell.recovered_entries.fetch_add(entries, std::memory_order_relaxed);
  cell.recovered_bytes.fetch_add(bytes, std::memory_order_relaxed);
}

void WorkLedger::note_speculative_reexec(std::uint64_t count) {
  local_cell().speculative_reexecutions.fetch_add(count,
                                                  std::memory_order_relaxed);
}

void WorkLedger::note_failure_forced_miss(std::uint64_t count) {
  local_cell().failure_forced_misses.fetch_add(count,
                                               std::memory_order_relaxed);
}

void WorkLedger::note_failure_injected(std::uint64_t count) {
  local_cell().failures_injected.fetch_add(count, std::memory_order_relaxed);
}

void WorkLedger::note_task_retry(std::uint64_t count) {
  local_cell().task_retries.fetch_add(count, std::memory_order_relaxed);
}

void WorkLedger::note_machine_blacklisted(std::uint64_t count) {
  local_cell().machines_blacklisted.fetch_add(count,
                                              std::memory_order_relaxed);
}

void WorkLedger::note_degraded_interval(std::uint64_t count) {
  local_cell().degraded_mode_intervals.fetch_add(count,
                                                 std::memory_order_relaxed);
}

void WorkLedger::note_scrub(std::uint64_t verified, std::uint64_t detected,
                            std::uint64_t repairs,
                            std::uint64_t quarantines) {
  ThreadCell& cell = local_cell();
  cell.scrub_records_verified.fetch_add(verified, std::memory_order_relaxed);
  cell.scrub_corruptions_detected.fetch_add(detected,
                                            std::memory_order_relaxed);
  cell.scrub_repairs.fetch_add(repairs, std::memory_order_relaxed);
  cell.scrub_quarantines.fetch_add(quarantines, std::memory_order_relaxed);
}

void WorkLedger::commit_run(RunKind kind, std::size_t window_splits,
                            std::size_t removed, std::size_t added,
                            const std::vector<AttributedWork>& partitions,
                            std::string_view tenant) {
  std::lock_guard<std::mutex> lock(mutex_);
  TenantWork* tenant_cell = nullptr;
  if (!tenant.empty()) {
    const auto it = tenant_totals_.find(tenant);
    if (it != tenant_totals_.end()) {
      tenant_cell = &it->second;
    } else {
      tenant_cell = &tenant_totals_[std::string(tenant)];
      tenant_cell->tenant = std::string(tenant);
    }
    ++tenant_cell->runs_committed;
  }
  for (const AttributedWork& partition : partitions) {
    for (const AttributedCell& cell : partition.cells()) {
      totals_[static_cast<std::size_t>(cell.cause)] += cell.work;
      if (tenant_cell != nullptr) {
        tenant_cell->totals[static_cast<std::size_t>(cell.cause)] += cell.work;
      }
    }
  }
  ++runs_committed_;
  if (history_limit_ == 0) return;
  SlideRecord record;
  record.sequence = next_sequence_++;
  record.kind = kind;
  record.tenant = std::string(tenant);
  record.window_splits = window_splits;
  record.removed = removed;
  record.added = added;
  record.partitions = partitions;
  history_.push_back(std::move(record));
  while (history_.size() > history_limit_) history_.pop_front();
}

void WorkLedger::set_history_limit(std::size_t limit) {
  std::lock_guard<std::mutex> lock(mutex_);
  history_limit_ = limit;
  while (history_.size() > history_limit_) history_.pop_front();
}

LedgerSnapshot WorkLedger::snapshot() const {
  LedgerSnapshot snap;
  std::lock_guard<std::mutex> lock(mutex_);
  snap.totals = totals_;
  snap.runs_committed = runs_committed_;
  snap.recent.assign(history_.begin(), history_.end());
  snap.tenants.reserve(tenant_totals_.size());
  for (const auto& [name, work] : tenant_totals_) snap.tenants.push_back(work);
  for (const auto& cell : cells_) {
    snap.counters.eviction_forced_misses +=
        cell->eviction_forced_misses.load(std::memory_order_relaxed);
    snap.counters.budget_evictions +=
        cell->budget_evictions.load(std::memory_order_relaxed);
    snap.counters.quota_evictions +=
        cell->quota_evictions.load(std::memory_order_relaxed);
    snap.counters.recovered_entries +=
        cell->recovered_entries.load(std::memory_order_relaxed);
    snap.counters.recovered_bytes +=
        cell->recovered_bytes.load(std::memory_order_relaxed);
    snap.counters.speculative_reexecutions +=
        cell->speculative_reexecutions.load(std::memory_order_relaxed);
    snap.counters.failure_forced_misses +=
        cell->failure_forced_misses.load(std::memory_order_relaxed);
    snap.counters.failures_injected +=
        cell->failures_injected.load(std::memory_order_relaxed);
    snap.counters.task_retries +=
        cell->task_retries.load(std::memory_order_relaxed);
    snap.counters.machines_blacklisted +=
        cell->machines_blacklisted.load(std::memory_order_relaxed);
    snap.counters.degraded_mode_intervals +=
        cell->degraded_mode_intervals.load(std::memory_order_relaxed);
    snap.counters.scrub_records_verified +=
        cell->scrub_records_verified.load(std::memory_order_relaxed);
    snap.counters.scrub_corruptions_detected +=
        cell->scrub_corruptions_detected.load(std::memory_order_relaxed);
    snap.counters.scrub_repairs +=
        cell->scrub_repairs.load(std::memory_order_relaxed);
    snap.counters.scrub_quarantines +=
        cell->scrub_quarantines.load(std::memory_order_relaxed);
  }
  return snap;
}

void WorkLedger::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  totals_.fill(CauseWork{});
  tenant_totals_.clear();
  runs_committed_ = 0;
  next_sequence_ = 0;
  history_.clear();
  for (const auto& cell : cells_) {
    cell->eviction_forced_misses.store(0, std::memory_order_relaxed);
    cell->budget_evictions.store(0, std::memory_order_relaxed);
    cell->quota_evictions.store(0, std::memory_order_relaxed);
    cell->recovered_entries.store(0, std::memory_order_relaxed);
    cell->recovered_bytes.store(0, std::memory_order_relaxed);
    cell->speculative_reexecutions.store(0, std::memory_order_relaxed);
    cell->failure_forced_misses.store(0, std::memory_order_relaxed);
    cell->failures_injected.store(0, std::memory_order_relaxed);
    cell->task_retries.store(0, std::memory_order_relaxed);
    cell->machines_blacklisted.store(0, std::memory_order_relaxed);
    cell->degraded_mode_intervals.store(0, std::memory_order_relaxed);
    cell->scrub_records_verified.store(0, std::memory_order_relaxed);
    cell->scrub_corruptions_detected.store(0, std::memory_order_relaxed);
    cell->scrub_repairs.store(0, std::memory_order_relaxed);
    cell->scrub_quarantines.store(0, std::memory_order_relaxed);
  }
}

namespace {

void write_cause_work(JsonWriter& json, const CauseWork& work) {
  json.begin_object();
  json.key("combiner_invocations").value(work.combiner_invocations);
  json.key("combiner_reused").value(work.combiner_reused);
  json.key("nodes_visited").value(work.nodes_visited);
  json.key("rows_scanned").value(work.rows_scanned);
  json.key("memo_bytes_read").value(work.memo_bytes_read);
  json.key("memo_bytes_written").value(work.memo_bytes_written);
  json.end_object();
}

}  // namespace

std::string ledger_to_json(const LedgerSnapshot& snapshot) {
  JsonWriter json;
  json.begin_object();
  json.key("schema_version").value(static_cast<std::int64_t>(1));
  json.key("runs_committed").value(snapshot.runs_committed);
  json.key("total_combiner_invocations").value(snapshot.total_invocations());

  json.key("totals_by_cause").begin_object();
  for (std::size_t c = 0; c < kWorkCauseCount; ++c) {
    json.key(work_cause_name(static_cast<WorkCause>(c)));
    write_cause_work(json, snapshot.totals[c]);
  }
  json.end_object();

  json.key("counters").begin_object();
  json.key("eviction_forced_misses")
      .value(snapshot.counters.eviction_forced_misses);
  json.key("budget_evictions").value(snapshot.counters.budget_evictions);
  json.key("quota_evictions").value(snapshot.counters.quota_evictions);
  json.key("recovered_entries").value(snapshot.counters.recovered_entries);
  json.key("recovered_bytes").value(snapshot.counters.recovered_bytes);
  json.key("speculative_reexecutions")
      .value(snapshot.counters.speculative_reexecutions);
  json.key("failure_forced_misses")
      .value(snapshot.counters.failure_forced_misses);
  json.key("failures_injected").value(snapshot.counters.failures_injected);
  json.key("task_retries").value(snapshot.counters.task_retries);
  json.key("machines_blacklisted")
      .value(snapshot.counters.machines_blacklisted);
  json.key("degraded_mode_intervals")
      .value(snapshot.counters.degraded_mode_intervals);
  json.key("scrub_records_verified")
      .value(snapshot.counters.scrub_records_verified);
  json.key("scrub_corruptions_detected")
      .value(snapshot.counters.scrub_corruptions_detected);
  json.key("scrub_repairs").value(snapshot.counters.scrub_repairs);
  json.key("scrub_quarantines").value(snapshot.counters.scrub_quarantines);
  json.end_object();

  if (!snapshot.tenants.empty()) {
    json.key("tenants").begin_object();
    for (const TenantWork& tenant : snapshot.tenants) {
      json.key(tenant.tenant).begin_object();
      json.key("runs_committed").value(tenant.runs_committed);
      json.key("total_combiner_invocations")
          .value(tenant.total_invocations());
      json.key("totals_by_cause").begin_object();
      for (std::size_t c = 0; c < kWorkCauseCount; ++c) {
        if (tenant.totals[c].empty()) continue;
        json.key(work_cause_name(static_cast<WorkCause>(c)));
        write_cause_work(json, tenant.totals[c]);
      }
      json.end_object();
      json.end_object();
    }
    json.end_object();
  }

  json.key("recent_runs").begin_array();
  for (const SlideRecord& record : snapshot.recent) {
    json.begin_object();
    json.key("sequence").value(record.sequence);
    json.key("kind").value(run_kind_name(record.kind));
    if (!record.tenant.empty()) json.key("tenant").value(record.tenant);
    json.key("window_splits")
        .value(static_cast<std::uint64_t>(record.window_splits));
    json.key("removed").value(static_cast<std::uint64_t>(record.removed));
    json.key("added").value(static_cast<std::uint64_t>(record.added));
    json.key("partitions").begin_array();
    for (const AttributedWork& partition : record.partitions) {
      json.begin_array();
      for (const AttributedCell& cell : partition.cells()) {
        if (cell.work.empty()) continue;
        json.begin_object();
        json.key("cause").value(work_cause_name(cell.cause));
        json.key("level").value(static_cast<std::uint64_t>(cell.level));
        json.key("work");
        write_cause_work(json, cell.work);
        json.end_object();
      }
      json.end_array();
    }
    json.end_array();
    json.end_object();
  }
  json.end_array();

  json.end_object();
  return json.take();
}

}  // namespace slider::obs
