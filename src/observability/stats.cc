#include "observability/stats.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace slider::obs {

Histogram::Histogram(const HistogramOptions& options) : options_(options) {
  SLIDER_CHECK(options_.buckets > 0) << "histogram needs at least one bucket";
  SLIDER_CHECK(options_.max > options_.min) << "histogram max must exceed min";
  if (options_.exponential) {
    SLIDER_CHECK(options_.min > 0)
        << "exponential histogram needs a positive min";
  }
  counts_.assign(options_.buckets + 2, 0);  // + underflow + overflow
}

double Histogram::bucket_lower_bound(std::size_t bucket) const {
  const double n = static_cast<double>(options_.buckets);
  const double i = static_cast<double>(bucket);
  if (options_.exponential) {
    const double ratio = options_.max / options_.min;
    return options_.min * std::pow(ratio, i / n);
  }
  return options_.min + (options_.max - options_.min) * i / n;
}

double Histogram::bucket_upper_bound(std::size_t bucket) const {
  return bucket_lower_bound(bucket + 1);
}

std::size_t Histogram::bucket_for(double value) const {
  // Indices into counts_: 0 = underflow, 1..buckets = finite,
  // buckets + 1 = overflow.
  if (value < options_.min) return 0;
  if (value >= options_.max) return options_.buckets + 1;
  const double n = static_cast<double>(options_.buckets);
  double position;
  if (options_.exponential) {
    position = n * std::log(value / options_.min) /
               std::log(options_.max / options_.min);
  } else {
    position = n * (value - options_.min) / (options_.max - options_.min);
  }
  const auto bucket = static_cast<std::size_t>(std::clamp(
      position, 0.0, static_cast<double>(options_.buckets - 1)));
  return bucket + 1;
}

void Histogram::observe(double value) {
  if (!std::isfinite(value)) return;
  std::lock_guard<std::mutex> lock(mutex_);
  ++counts_[bucket_for(value)];
  if (total_ == 0) {
    min_seen_ = value;
    max_seen_ = value;
  } else {
    min_seen_ = std::min(min_seen_, value);
    max_seen_ = std::max(max_seen_, value);
  }
  ++total_;
  sum_ += value;
}

std::uint64_t Histogram::count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_;
}

double Histogram::sum() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return sum_;
}

double Histogram::percentile(double p) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return percentile_locked(p);
}

double Histogram::percentile_locked(double p) const {
  if (total_ == 0) return 0;
  p = std::clamp(p, 0.0, 100.0);
  const double target_rank = p / 100.0 * static_cast<double>(total_);
  double cumulative = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double in_bucket = static_cast<double>(counts_[i]);
    if (in_bucket == 0) continue;
    if (cumulative + in_bucket < target_rank) {
      cumulative += in_bucket;
      continue;
    }
    // Interpolate within the bucket; the open-ended under/overflow
    // buckets clamp to the observed extremes.
    double lower;
    double upper;
    if (i == 0) {
      lower = min_seen_;
      upper = std::min(options_.min, max_seen_);
    } else if (i == counts_.size() - 1) {
      lower = std::max(options_.max, min_seen_);
      upper = max_seen_;
    } else {
      lower = bucket_lower_bound(i - 1);
      upper = bucket_upper_bound(i - 1);
    }
    if (upper < lower) upper = lower;
    const double fraction =
        in_bucket == 0 ? 0 : (target_rank - cumulative) / in_bucket;
    const double estimate = lower + (upper - lower) * fraction;
    return std::clamp(estimate, min_seen_, max_seen_);
  }
  return max_seen_;
}

HistogramSnapshot Histogram::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  HistogramSnapshot snap;
  snap.count = total_;
  snap.sum = sum_;
  if (total_ > 0) {
    snap.min = min_seen_;
    snap.max = max_seen_;
    snap.p50 = percentile_locked(50);
    snap.p95 = percentile_locked(95);
    snap.p99 = percentile_locked(99);
  }
  snap.underflow = counts_.front();
  snap.overflow = counts_.back();
  snap.buckets.reserve(options_.buckets);
  for (std::size_t i = 0; i < options_.buckets; ++i) {
    snap.buckets.push_back(
        HistogramBucketCount{bucket_upper_bound(i), counts_[i + 1]});
  }
  return snap;
}

void Histogram::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  std::fill(counts_.begin(), counts_.end(), 0);
  total_ = 0;
  sum_ = 0;
  min_seen_ = 0;
  max_seen_ = 0;
}

StatsRegistry& StatsRegistry::global() {
  static StatsRegistry* registry = new StatsRegistry();
  return *registry;
}

Counter& StatsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& StatsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& StatsRegistry::histogram(std::string_view name,
                                    const HistogramOptions& options) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name), std::make_unique<Histogram>(options))
             .first;
  }
  return *it->second;
}

StatsSnapshot StatsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  StatsSnapshot snap;
  for (const auto& [name, counter] : counters_) {
    snap.counters.emplace(name, counter->value());
  }
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges.emplace(name, gauge->value());
  }
  for (const auto& [name, histogram] : histograms_) {
    snap.histograms.emplace(name, histogram->snapshot());
  }
  return snap;
}

void StatsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, counter] : counters_) counter->reset();
  for (auto& [name, gauge] : gauges_) gauge->reset();
  for (auto& [name, histogram] : histograms_) histogram->reset();
}

}  // namespace slider::obs
