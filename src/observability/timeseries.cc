#include "observability/timeseries.h"

#include <algorithm>

#include "observability/json_writer.h"

namespace slider::obs {

void AggregateSample::fold(const SlideSample& s) {
  if (count == 0) {
    first_sequence = s.sequence;
    sim_start = s.sim_start;
  }
  ++count;
  sim_latency_sum += s.sim_latency;
  sim_latency_max = std::max(sim_latency_max, s.sim_latency);
  wall_latency_us_sum += s.wall_latency_us;
  wall_latency_us_max = std::max(wall_latency_us_max, s.wall_latency_us);
  for (std::size_t c = 0; c < kWorkCauseCount; ++c) {
    cause_invocations[c] += s.cause_invocations[c];
  }
  combiner_invocations += s.combiner_invocations;
  combiner_reused += s.combiner_reused;
  nodes_visited += s.nodes_visited;
  task_retries += s.task_retries;
  failed_attempts += s.failed_attempts;
  if (s.durable_degraded) ++degraded_samples;
}

TimeSeries::TimeSeries() : TimeSeries(Options{}) {}

TimeSeries::TimeSeries(Options options) { configure(options); }

TimeSeries& TimeSeries::global() {
  static TimeSeries* series = new TimeSeries();
  return *series;
}

void TimeSeries::configure(Options options) {
  std::lock_guard<std::mutex> lock(mutex_);
  options_ = options;
  options_.raw_capacity = std::max<std::size_t>(1, options_.raw_capacity);
  options_.aggregate_width = std::max<std::size_t>(1, options_.aggregate_width);
  options_.aggregate_capacity =
      std::max<std::size_t>(1, options_.aggregate_capacity);
  raw_.assign(options_.raw_capacity, SlideSample{});
  aggregates_.assign(options_.aggregate_capacity, AggregateSample{});
  raw_start_ = raw_size_ = 0;
  agg_start_ = agg_size_ = 0;
  open_bucket_ = AggregateSample{};
  open_bucket_active_ = false;
  next_sequence_ = 0;
  samples_dropped_ = 0;
}

void TimeSeries::reset() {
  Options options;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    options = options_;
  }
  configure(options);
}

void TimeSeries::record(SlideSample sample) {
  std::lock_guard<std::mutex> lock(mutex_);
  sample.sequence = next_sequence_++;
  if (raw_size_ == raw_.size()) {
    // The oldest raw sample ages out: fold it into the open aggregation
    // bucket, sealing the bucket into the aggregate ring once it spans
    // aggregate_width slides.
    const SlideSample& evicted = raw_[raw_start_];
    open_bucket_.fold(evicted);
    open_bucket_active_ = true;
    if (open_bucket_.count >= options_.aggregate_width) {
      if (agg_size_ == aggregates_.size()) {
        samples_dropped_ += aggregates_[agg_start_].count;
        agg_start_ = (agg_start_ + 1) % aggregates_.size();
        --agg_size_;
      }
      aggregates_[(agg_start_ + agg_size_) % aggregates_.size()] = open_bucket_;
      ++agg_size_;
      open_bucket_ = AggregateSample{};
      open_bucket_active_ = false;
    }
    raw_start_ = (raw_start_ + 1) % raw_.size();
    --raw_size_;
  }
  raw_[(raw_start_ + raw_size_) % raw_.size()] = sample;
  ++raw_size_;
}

std::uint64_t TimeSeries::total_recorded() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return next_sequence_;
}

TimeSeriesSnapshot TimeSeries::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  TimeSeriesSnapshot snap;
  snap.total_recorded = next_sequence_;
  snap.samples_dropped = samples_dropped_;
  snap.aggregates.reserve(agg_size_ + 1);
  for (std::size_t i = 0; i < agg_size_; ++i) {
    snap.aggregates.push_back(aggregates_[(agg_start_ + i) % aggregates_.size()]);
  }
  // The partially-filled bucket is real history too: without it the slides
  // between the sealed buckets and the raw window would vanish.
  if (open_bucket_active_) snap.aggregates.push_back(open_bucket_);
  snap.raw.reserve(raw_size_);
  for (std::size_t i = 0; i < raw_size_; ++i) {
    snap.raw.push_back(raw_[(raw_start_ + i) % raw_.size()]);
  }
  return snap;
}

namespace {

void write_cause_array(JsonWriter& json, const char* key,
                       const std::array<std::uint64_t, kWorkCauseCount>& a) {
  json.key(key).begin_object();
  for (std::size_t c = 0; c < kWorkCauseCount; ++c) {
    if (a[c] == 0) continue;  // sparse: most causes are idle most slides
    json.key(work_cause_name(static_cast<WorkCause>(c))).value(a[c]);
  }
  json.end_object();
}

}  // namespace

std::string TimeSeries::timeseries_to_json(const TimeSeriesSnapshot& snapshot) {
  JsonWriter json;
  json.begin_object();
  json.key("schema_version").value(std::uint64_t{1});
  json.key("total_recorded").value(snapshot.total_recorded);
  json.key("samples_dropped").value(snapshot.samples_dropped);
  json.key("aggregates").begin_array();
  for (const AggregateSample& a : snapshot.aggregates) {
    json.begin_object();
    json.key("first_sequence").value(a.first_sequence);
    json.key("count").value(a.count);
    json.key("sim_start").value(a.sim_start);
    json.key("sim_latency_sum").value(a.sim_latency_sum);
    json.key("sim_latency_max").value(a.sim_latency_max);
    json.key("wall_latency_us_sum").value(a.wall_latency_us_sum);
    json.key("wall_latency_us_max").value(a.wall_latency_us_max);
    write_cause_array(json, "cause_invocations", a.cause_invocations);
    json.key("combiner_invocations").value(a.combiner_invocations);
    json.key("combiner_reused").value(a.combiner_reused);
    json.key("nodes_visited").value(a.nodes_visited);
    json.key("task_retries").value(a.task_retries);
    json.key("failed_attempts").value(a.failed_attempts);
    json.key("degraded_samples").value(a.degraded_samples);
    json.end_object();
  }
  json.end_array();
  json.key("raw").begin_array();
  for (const SlideSample& s : snapshot.raw) {
    json.begin_object();
    json.key("sequence").value(s.sequence);
    json.key("kind").value(run_kind_name(s.kind));
    if (!s.tenant_view().empty()) json.key("tenant").value(s.tenant_view());
    json.key("sim_start").value(s.sim_start);
    json.key("sim_latency").value(s.sim_latency);
    json.key("wall_latency_us").value(s.wall_latency_us);
    json.key("window_splits").value(s.window_splits);
    json.key("removed").value(s.removed);
    json.key("added").value(s.added);
    write_cause_array(json, "cause_invocations", s.cause_invocations);
    json.key("combiner_invocations").value(s.combiner_invocations);
    json.key("combiner_reused").value(s.combiner_reused);
    json.key("nodes_visited").value(s.nodes_visited);
    json.key("memo_hit_rate").value(s.memo_hit_rate());
    json.key("task_retries").value(s.task_retries);
    json.key("failed_attempts").value(s.failed_attempts);
    json.key("durable_degraded").value(s.durable_degraded);
    json.end_object();
  }
  json.end_array();
  json.end_object();
  return json.take();
}

}  // namespace slider::obs
