#include "observability/run_report.h"

#include <cstdio>
#include <cstdlib>

#include "common/logging.h"
#include "observability/json_writer.h"
#include "observability/stats.h"
#include "observability/trace.h"

namespace slider::obs {
namespace {

void write_value(JsonWriter& json, const ReportValue& value) {
  std::visit([&json](const auto& v) { json.value(v); }, value);
}

}  // namespace

RunReport::Row& RunReport::Row::metrics(const std::string& prefix,
                                        const RunMetrics& m) {
  col(prefix + "work", m.work());
  col(prefix + "time", m.time);
  col(prefix + "map_work", m.map_work);
  col(prefix + "map_time", m.map_time);
  col(prefix + "contraction_work", m.contraction_work);
  col(prefix + "reduce_work", m.reduce_work);
  col(prefix + "shuffle_work", m.shuffle_work);
  col(prefix + "memo_read_work", m.memo_read_work);
  col(prefix + "background_work", m.background_work);
  col(prefix + "background_time", m.background_time);
  col(prefix + "map_tasks", m.map_tasks);
  col(prefix + "reduce_tasks", m.reduce_tasks);
  col(prefix + "combiner_invocations", m.combiner_invocations);
  col(prefix + "combiner_reused", m.combiner_reused);
  col(prefix + "migrations", m.migrations);
  col(prefix + "memo_bytes_written", m.memo_bytes_written);
  // Fault-tolerance columns, only when any attempt bookkeeping happened
  // (failure-free runs on the fast path record no attempts at all and keep
  // their historical column set).
  if (m.task_attempts > 0 || m.failed_attempts > 0 || m.task_retries > 0) {
    col(prefix + "task_attempts", m.task_attempts);
    col(prefix + "failed_attempts", m.failed_attempts);
    col(prefix + "task_retries", m.task_retries);
    col(prefix + "machines_blacklisted", m.machines_blacklisted);
  }
  return *this;
}

RunReport::RunReport(std::string bench_name) : name_(std::move(bench_name)) {}

RunReport& RunReport::set_param(std::string key, ReportValue value) {
  params_.emplace_back(std::move(key), std::move(value));
  return *this;
}

RunReport& RunReport::add_note(std::string note) {
  notes_.push_back(std::move(note));
  return *this;
}

RunReport& RunReport::set_counters(std::map<std::string, double> counters) {
  counters_ = std::move(counters);
  return *this;
}

RunReport& RunReport::merge_stats(const StatsSnapshot& stats) {
  for (const auto& [name, value] : stats.counters) {
    counters_[name] = static_cast<double>(value);
  }
  for (const auto& [name, value] : stats.gauges) {
    counters_[name] = value;
  }
  for (const auto& [name, histogram] : stats.histograms) {
    counters_[name + ".count"] = static_cast<double>(histogram.count);
    counters_[name + ".sum"] = histogram.sum;
    counters_[name + ".min"] = histogram.min;
    counters_[name + ".max"] = histogram.max;
    counters_[name + ".p50"] = histogram.p50;
    counters_[name + ".p95"] = histogram.p95;
    counters_[name + ".p99"] = histogram.p99;
    counters_[name + ".underflow"] = static_cast<double>(histogram.underflow);
    counters_[name + ".overflow"] = static_cast<double>(histogram.overflow);
  }
  return *this;
}

RunReport& RunReport::set_robustness(RobustnessReport robustness) {
  robustness_ = robustness;
  return *this;
}

RunReport::Row& RunReport::add_row() {
  rows_.emplace_back();
  return rows_.back();
}

std::string RunReport::to_json() const {
  JsonWriter json;
  json.begin_object();
  json.key("bench").value(name_);
  json.key("schema_version").value(static_cast<std::int64_t>(1));

  json.key("params").begin_object();
  for (const auto& [key, value] : params_) {
    json.key(key);
    write_value(json, value);
  }
  json.end_object();

  json.key("rows").begin_array();
  for (const Row& row : rows_) {
    json.begin_object();
    for (const auto& [key, value] : row.cells()) {
      json.key(key);
      write_value(json, value);
    }
    json.end_object();
  }
  json.end_array();

  json.key("counters").begin_object();
  for (const auto& [key, value] : counters_) {
    json.key(key).value(value);
  }
  // Trace-health counters are stamped into every report so a BENCH_*.json
  // whose trace-derived numbers under-count (ring wrap-around dropped
  // events) is self-describing; 0 when tracing was off or nothing dropped.
  if (counters_.find("trace.dropped_events") == counters_.end()) {
    const TraceCollector& trace = TraceCollector::global();
    json.key("trace.dropped_events")
        .value(static_cast<double>(trace.dropped()));
    json.key("trace.recorded_events")
        .value(static_cast<double>(trace.total_recorded()));
  }
  json.end_object();

  if (robustness_.has_value()) {
    const RobustnessReport& r = *robustness_;
    json.key("robustness").begin_object();
    json.key("seeds").value(r.seeds);
    json.key("failures_injected").value(r.failures_injected);
    json.key("crashes").value(r.crashes);
    json.key("recoveries").value(r.recoveries);
    json.key("stragglers").value(r.stragglers);
    json.key("memo_losses").value(r.memo_losses);
    json.key("durable_error_windows").value(r.durable_error_windows);
    json.key("task_attempts").value(r.task_attempts);
    json.key("failed_attempts").value(r.failed_attempts);
    json.key("task_retries").value(r.task_retries);
    json.key("machines_blacklisted").value(r.machines_blacklisted);
    json.key("failure_forced_misses").value(r.failure_forced_misses);
    json.key("attempt_cap").value(r.attempt_cap);
    json.key("max_attempts_seen").value(r.max_attempts_seen);
    json.key("outputs_identical").value(r.outputs_identical);
    json.end_object();
  }

  json.key("notes").begin_array();
  for (const std::string& note : notes_) {
    json.value(note);
  }
  json.end_array();

  json.end_object();
  return json.take();
}

std::string RunReport::default_filename() const {
  return "BENCH_" + name_ + ".json";
}

std::string RunReport::write(const std::string& directory) const {
  std::string dir = directory;
  if (dir.empty()) {
    const char* env = std::getenv("SLIDER_BENCH_OUT");
    dir = env != nullptr && env[0] != '\0' ? env : ".";
  }
  const std::string path = dir + "/" + default_filename();
  const std::string document = to_json();
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    SLIDER_LOG(Error) << "cannot open bench report " << path;
    return "";
  }
  const std::size_t written =
      std::fwrite(document.data(), 1, document.size(), file);
  std::fclose(file);
  if (written != document.size()) {
    SLIDER_LOG(Error) << "short write to bench report " << path;
    return "";
  }
  return path;
}

}  // namespace slider::obs
