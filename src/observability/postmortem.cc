#include "observability/postmortem.h"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/crc32c.h"
#include "common/logging.h"
#include "data/serde.h"

namespace slider::obs {

const JsonValue& JsonValue::operator[](std::string_view key) const {
  static const JsonValue kNull;
  if (type_ != Type::kObject) return kNull;
  const auto it = object_.find(std::string(key));
  return it == object_.end() ? kNull : it->second;
}

namespace {

// Recursive-descent JSON parser. Strict: no comments, no trailing commas,
// no unquoted keys. Depth-limited so a hostile file cannot blow the stack.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  std::optional<JsonValue> parse() {
    std::optional<JsonValue> value = parse_value(0);
    if (!value.has_value()) return std::nullopt;
    skip_ws();
    if (pos_ != text_.size()) return std::nullopt;  // trailing garbage
    return value;
  }

 private:
  static constexpr int kMaxDepth = 64;

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  std::optional<std::string> parse_string() {
    if (pos_ >= text_.size() || text_[pos_] != '"') return std::nullopt;
    ++pos_;
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) return std::nullopt;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return std::nullopt;
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return std::nullopt;
          }
          // The writer only escapes control characters; decode the BMP
          // code point as UTF-8.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: return std::nullopt;
      }
    }
    return std::nullopt;  // unterminated
  }

  std::optional<JsonValue> parse_value(int depth) {
    if (depth > kMaxDepth) return std::nullopt;
    skip_ws();
    if (pos_ >= text_.size()) return std::nullopt;
    const char c = text_[pos_];
    if (c == '{') {
      ++pos_;
      JsonValue::Object object;
      skip_ws();
      if (consume('}')) return JsonValue(std::move(object));
      while (true) {
        skip_ws();
        std::optional<std::string> key = parse_string();
        if (!key.has_value() || !consume(':')) return std::nullopt;
        std::optional<JsonValue> value = parse_value(depth + 1);
        if (!value.has_value()) return std::nullopt;
        object[std::move(*key)] = std::move(*value);
        if (consume(',')) continue;
        if (consume('}')) return JsonValue(std::move(object));
        return std::nullopt;
      }
    }
    if (c == '[') {
      ++pos_;
      JsonValue::Array array;
      skip_ws();
      if (consume(']')) return JsonValue(std::move(array));
      while (true) {
        std::optional<JsonValue> value = parse_value(depth + 1);
        if (!value.has_value()) return std::nullopt;
        array.push_back(std::move(*value));
        if (consume(',')) continue;
        if (consume(']')) return JsonValue(std::move(array));
        return std::nullopt;
      }
    }
    if (c == '"') {
      std::optional<std::string> s = parse_string();
      if (!s.has_value()) return std::nullopt;
      return JsonValue(std::move(*s));
    }
    if (consume_literal("null")) return JsonValue();
    if (consume_literal("true")) return JsonValue(true);
    if (consume_literal("false")) return JsonValue(false);
    // Number: delegate validation to strtod over the longest plausible
    // prefix (JSON numbers are a strict subset of strtod's grammar, and
    // the writer only emits %.12g / integers).
    if (c == '-' || (c >= '0' && c <= '9')) {
      const char* begin = text_.data() + pos_;
      char* end = nullptr;
      const double number = std::strtod(begin, &end);
      if (end == begin) return std::nullopt;
      pos_ += static_cast<std::size_t>(end - begin);
      return JsonValue(number);
    }
    return std::nullopt;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::optional<JsonValue> parse_json(std::string_view text) {
  return JsonParser(text).parse();
}

std::string frame_postmortem(std::string_view json) {
  std::string out;
  out.reserve(kPostmortemMagic.size() + 16 + json.size());
  out += kPostmortemMagic;
  wire::put_u32(out, kPostmortemVersion);
  wire::put_u32(out, crc32c(json));
  wire::put_u64(out, json.size());
  out += json;
  return out;
}

std::optional<PostmortemFile> read_postmortem(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    SLIDER_LOG(Warning) << "postmortem: cannot open " << path;
    return std::nullopt;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string data = buffer.str();

  std::string_view rest = data;
  if (rest.substr(0, kPostmortemMagic.size()) != kPostmortemMagic) {
    SLIDER_LOG(Warning) << "postmortem: bad magic: " << path;
    return std::nullopt;
  }
  rest.remove_prefix(kPostmortemMagic.size());
  std::uint32_t version = 0;
  std::uint32_t crc = 0;
  std::uint64_t size = 0;
  if (!wire::get_u32(rest, &version) || !wire::get_u32(rest, &crc) ||
      !wire::get_u64(rest, &size)) {
    SLIDER_LOG(Warning) << "postmortem: truncated header: " << path;
    return std::nullopt;
  }
  if (version != kPostmortemVersion) {
    SLIDER_LOG(Warning) << "postmortem: unsupported version " << version
                        << ": " << path;
    return std::nullopt;
  }
  if (rest.size() != size) {
    SLIDER_LOG(Warning) << "postmortem: size mismatch (" << rest.size()
                        << " vs " << size << "): " << path;
    return std::nullopt;
  }
  if (crc32c(rest) != crc) {
    SLIDER_LOG(Warning) << "postmortem: CRC mismatch: " << path;
    return std::nullopt;
  }
  PostmortemFile file;
  file.version = version;
  file.json = std::string(rest);
  std::optional<JsonValue> root = parse_json(file.json);
  if (!root.has_value()) {
    SLIDER_LOG(Warning) << "postmortem: payload is not valid JSON: " << path;
    return std::nullopt;
  }
  file.root = std::move(*root);
  return file;
}

}  // namespace slider::obs
