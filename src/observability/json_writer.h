// Minimal streaming JSON writer shared by the trace exporter and the
// bench RunReport. Handles comma placement and string escaping; emits
// compact, valid JSON (non-finite doubles degrade to null, which Perfetto
// and every JSON parser accept).
#pragma once

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

namespace slider::obs {

class JsonWriter {
 public:
  JsonWriter& begin_object() {
    separate();
    out_ += '{';
    stack_.push_back(false);
    return *this;
  }
  JsonWriter& end_object() {
    stack_.pop_back();
    out_ += '}';
    return *this;
  }
  JsonWriter& begin_array() {
    separate();
    out_ += '[';
    stack_.push_back(false);
    return *this;
  }
  JsonWriter& end_array() {
    stack_.pop_back();
    out_ += ']';
    return *this;
  }

  JsonWriter& key(std::string_view name) {
    separate();
    append_string(name);
    out_ += ':';
    pending_value_ = true;
    return *this;
  }

  JsonWriter& value(std::string_view text) {
    separate();
    append_string(text);
    return *this;
  }
  JsonWriter& value(const char* text) { return value(std::string_view(text)); }
  JsonWriter& value(double number) {
    separate();
    if (!std::isfinite(number)) {
      out_ += "null";
      return *this;
    }
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%.12g", number);
    out_ += buffer;
    return *this;
  }
  JsonWriter& value(std::uint64_t number) {
    separate();
    out_ += std::to_string(number);
    return *this;
  }
  JsonWriter& value(std::int64_t number) {
    separate();
    out_ += std::to_string(number);
    return *this;
  }
  JsonWriter& value(bool flag) {
    separate();
    out_ += flag ? "true" : "false";
    return *this;
  }
  // Embeds `json` verbatim as the next value. The caller guarantees it is
  // a complete, valid JSON document (e.g. the output of another writer) —
  // used to nest the ledger / trace / time-series documents inside a
  // post-mortem dump without re-serializing them.
  JsonWriter& raw(std::string_view json) {
    separate();
    out_ += json;
    return *this;
  }

  const std::string& str() const { return out_; }
  std::string take() { return std::move(out_); }

 private:
  // Inserts the comma before a new element unless it is the first in its
  // container or the value immediately following a key.
  void separate() {
    if (pending_value_) {
      pending_value_ = false;
      return;
    }
    if (!stack_.empty()) {
      if (stack_.back()) out_ += ',';
      stack_.back() = true;
    }
  }

  void append_string(std::string_view text) {
    out_ += '"';
    for (const char c : text) {
      switch (c) {
        case '"': out_ += "\\\""; break;
        case '\\': out_ += "\\\\"; break;
        case '\n': out_ += "\\n"; break;
        case '\r': out_ += "\\r"; break;
        case '\t': out_ += "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buffer[8];
            std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                          static_cast<unsigned>(static_cast<unsigned char>(c)));
            out_ += buffer;
          } else {
            out_ += c;
          }
      }
    }
    out_ += '"';
  }

  std::string out_;
  std::vector<bool> stack_;  // per open container: "has emitted an element"
  bool pending_value_ = false;
};

}  // namespace slider::obs
