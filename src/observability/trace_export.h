// Exporters for collected trace events:
//   * Chrome trace-event JSON (the "JSON Array with metadata" flavour) —
//     drag the file into https://ui.perfetto.dev or chrome://tracing.
//     Wall-clock events appear under pid 1 ("slider wall-clock"),
//     simulated-time events under pid 2 ("slider simulated cluster"),
//     with the simulated lanes (machine ids, phase lanes) as threads.
//   * A human-readable summary table aggregating spans per
//     (domain, category, name) and reporting the last value of every
//     counter series.
#pragma once

#include <span>
#include <string>

#include "observability/trace.h"

namespace slider::obs {

// Process ids used in the exported JSON.
inline constexpr int kWallPid = 1;
inline constexpr int kSimulatedPid = 2;

// Serializes `events` (as returned by TraceCollector::snapshot()) to a
// complete Chrome trace-event JSON document. Events are emitted sorted by
// (pid, ts) so timestamps are monotone within each process.
//
// `dropped_events` (TraceCollector::dropped()) is recorded in the
// document's top-level metadata — a timeline that silently lost events to
// ring wrap-around reads as complete otherwise.
std::string to_chrome_trace_json(std::span<const TraceEvent> events,
                                 std::uint64_t dropped_events = 0);

// Writes to_chrome_trace_json(events, dropped_events) to `path`. Returns
// false (and logs) on I/O failure.
bool write_chrome_trace(const std::string& path,
                        std::span<const TraceEvent> events,
                        std::uint64_t dropped_events = 0);

// Aggregated per-span statistics and final counter values, formatted as a
// fixed-width text table for terminal consumption. A non-zero
// `dropped_events` is called out in a trailing warning line.
std::string trace_summary(std::span<const TraceEvent> events,
                          std::uint64_t dropped_events = 0);

}  // namespace slider::obs
