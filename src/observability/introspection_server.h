// Live introspection endpoint: a tiny embedded HTTP/1.0 server (plain
// POSIX sockets, loopback by default, zero dependencies) exposing the
// process's observability state while a session runs:
//
//   GET /healthz         — liveness probe ("ok\n"; the session overrides
//                          it with degradation state + SLO verdicts)
//   GET /metrics         — Prometheus text exposition: slider_build_info,
//                          every StatsRegistry instrument, and the causal
//                          work ledger
//   GET /ledger.json     — full WorkLedger snapshot (per-run, per-partition,
//                          per-(cause, level) attribution)
//   GET /trace           — Chrome trace-event JSON of the trace ring buffer
//   GET /timeseries.json — per-slide time series (observability/timeseries.h):
//                          recent slides raw, older history aggregated
//   + any route registered via add_route() (the session registers /tree)
//
// Design: one accept thread; connections are handled inline (requests are
// single-line GETs, responses are built in memory, Connection: close).
// poll() with a short timeout keeps stop() prompt. The server holds no
// locks while a handler runs — handlers snapshot through the instruments'
// own synchronization, so a scrape can land mid-slide without stalling
// workers (asserted under tsan in tests/test_work_ledger.cc).
//
// Lifecycle: constructed stopped; start() binds + spawns the thread and
// returns false (with a log line) if the port cannot be bound. When
// `options.fallback_to_ephemeral` is set, a busy port falls back to an
// OS-assigned ephemeral one — port() reports what was actually bound.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "observability/stats.h"
#include "observability/work_ledger.h"

namespace slider::obs {

struct HttpRequest {
  std::string method;
  std::string path;   // decoded target up to '?'
  std::string query;  // raw query string ("" when absent)

  // First value of `key` in the query string; `fallback` when absent.
  std::string query_param(std::string_view key,
                          std::string_view fallback = "") const;
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;

  static HttpResponse text(std::string body,
                           std::string content_type =
                               "text/plain; charset=utf-8") {
    HttpResponse r;
    r.body = std::move(body);
    r.content_type = std::move(content_type);
    return r;
  }
  static HttpResponse json(std::string body) {
    return text(std::move(body), "application/json");
  }
  static HttpResponse error(int status, std::string message);
};

// Prometheus text exposition (version 0.0.4) of a stats snapshot plus the
// work ledger. Function of its inputs plus the process build identity
// (build_info.h), so tests can validate the format without sockets.
// Conventions: every metric is prefixed "slider_", names are sanitized to
// [a-zA-Z0-9_:], counters get a "_total" suffix, histograms emit
// cumulative le-labelled buckets ending in le="+Inf", ledger work is
// labelled {cause="..."}, and the exposition opens with the
// slider_build_info constant-1 gauge (version/git-sha/build-type labels).
std::string prometheus_text(const StatsSnapshot& stats,
                            const LedgerSnapshot& ledger);

class IntrospectionServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  struct Options {
    std::uint16_t port = 0;  // 0 = OS-assigned ephemeral port
    // Retry with an ephemeral port when `port` is already bound.
    bool fallback_to_ephemeral = true;
    // Bind address; loopback unless explicitly widened.
    std::string bind_address = "127.0.0.1";
  };

  IntrospectionServer();
  explicit IntrospectionServer(Options options);
  ~IntrospectionServer();
  IntrospectionServer(const IntrospectionServer&) = delete;
  IntrospectionServer& operator=(const IntrospectionServer&) = delete;

  // Registers `handler` for exact path `path` (e.g. "/tree"). Replaces any
  // existing route. Safe before start(); after start() only from the
  // owning thread while no request is being dispatched to the same path.
  void add_route(std::string path, Handler handler);

  // Binds, listens, and spawns the accept thread. Returns false (logging
  // the reason) if no socket could be bound; the server stays stopped.
  bool start();
  void stop();
  bool running() const { return running_.load(std::memory_order_acquire); }

  // Actual bound port (differs from options.port after ephemeral
  // fallback); 0 while stopped.
  std::uint16_t port() const { return port_; }

  // Request router, exposed for socket-free testing: feeds one raw HTTP
  // request text through parsing + dispatch and returns the full response
  // bytes (status line, headers, body).
  std::string handle_raw_request(std::string_view request_text) const;

 private:
  void accept_loop();
  void handle_connection(int fd) const;
  HttpResponse dispatch(const HttpRequest& request) const;

  Options options_;
  std::map<std::string, Handler, std::less<>> routes_;
  mutable std::mutex routes_mutex_;
  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
};

}  // namespace slider::obs
