// Declarative SLOs over the per-slide time series.
//
// Slider's pitch is predictable incremental latency, so its service
// objectives are per-slide: a p99 slide-latency budget (the paper's
// c·Δ·log₂w claim, turned into a budget), a memo hit-rate floor (reuse is
// the mechanism behind the budget), and a retry-rate ceiling (fault noise
// must stay bounded). Each spec is evaluated over two windows of recent
// slides:
//
//   * the rolling window (`window` slides) — the objective itself;
//   * the burn window (`burn_window` slides, a short suffix) — a fast-burn
//     signal: when the short window also violates, the breach is active
//     right now rather than a residue of old samples still inside the
//     rolling window.
//
// evaluate_slos() is a pure function of a TimeSeriesSnapshot, so tests
// exercise it without sessions and the flight recorder can embed verdicts
// in a post-mortem dump verbatim.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "observability/timeseries.h"

namespace slider::obs {

enum class SloKind : std::uint8_t {
  kSlideLatencyP99,   // p99 of raw sim_latency must stay <= threshold (sec)
  kMemoHitRateFloor,  // aggregate memo hit rate must stay >= threshold
  kRetryRateCeiling,  // mean task retries per slide must stay <= threshold
};

std::string_view slo_kind_name(SloKind kind);

struct SloSpec {
  std::string name;
  SloKind kind = SloKind::kSlideLatencyP99;
  double threshold = 0;
  std::size_t window = 64;      // rolling window, in slides
  std::size_t burn_window = 8;  // fast-burn suffix, in slides
  // Verdicts stay ok (vacuously) until this many samples exist — a cold
  // session should not page before it has produced statistics.
  std::size_t min_samples = 4;
};

struct SloVerdict {
  std::string name;
  SloKind kind = SloKind::kSlideLatencyP99;
  double threshold = 0;
  bool ok = true;
  bool burning = false;    // the burn window also violates
  double value = 0;        // metric over the rolling window
  double burn_value = 0;   // metric over the burn window
  std::uint64_t samples = 0;  // raw samples the rolling window covered
};

// Lenient defaults for interactive use (the live dashboard): they flag
// pathological behaviour without encoding any workload-specific budget.
// Serious callers declare their own specs.
std::vector<SloSpec> default_slos();

SloVerdict evaluate_slo(const TimeSeriesSnapshot& series, const SloSpec& spec);
std::vector<SloVerdict> evaluate_slos(const TimeSeriesSnapshot& series,
                                      const std::vector<SloSpec>& specs);

// JSON array of verdicts (embedded in /healthz and post-mortem dumps).
std::string slo_verdicts_to_json(const std::vector<SloVerdict>& verdicts);

}  // namespace slider::obs
