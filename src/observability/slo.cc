#include "observability/slo.h"

#include <algorithm>
#include <cmath>

#include "observability/json_writer.h"

namespace slider::obs {

std::string_view slo_kind_name(SloKind kind) {
  switch (kind) {
    case SloKind::kSlideLatencyP99: return "slide_latency_p99";
    case SloKind::kMemoHitRateFloor: return "memo_hit_rate_floor";
    case SloKind::kRetryRateCeiling: return "retry_rate_ceiling";
  }
  return "unknown";
}

std::vector<SloSpec> default_slos() {
  return {
      SloSpec{"slide-latency", SloKind::kSlideLatencyP99, /*threshold=*/300.0,
              /*window=*/64, /*burn_window=*/8, /*min_samples=*/4},
      SloSpec{"memo-hit-rate", SloKind::kMemoHitRateFloor, /*threshold=*/0.05,
              /*window=*/64, /*burn_window=*/8, /*min_samples=*/8},
      SloSpec{"retry-rate", SloKind::kRetryRateCeiling, /*threshold=*/4.0,
              /*window=*/64, /*burn_window=*/8, /*min_samples=*/4},
  };
}

namespace {

// Metric over the trailing `count` raw samples (count == 0 -> all).
double window_metric(const std::vector<SlideSample>& raw, std::size_t count,
                     SloKind kind) {
  const std::size_t n = count == 0 ? raw.size() : std::min(count, raw.size());
  if (n == 0) return 0;
  const std::size_t begin = raw.size() - n;
  switch (kind) {
    case SloKind::kSlideLatencyP99: {
      std::vector<double> latencies;
      latencies.reserve(n);
      for (std::size_t i = begin; i < raw.size(); ++i) {
        latencies.push_back(raw[i].sim_latency);
      }
      std::sort(latencies.begin(), latencies.end());
      // Nearest-rank p99.
      const std::size_t rank = static_cast<std::size_t>(
          std::ceil(0.99 * static_cast<double>(latencies.size())));
      return latencies[std::min(latencies.size() - 1,
                                rank == 0 ? 0 : rank - 1)];
    }
    case SloKind::kMemoHitRateFloor: {
      std::uint64_t invoked = 0;
      std::uint64_t reused = 0;
      for (std::size_t i = begin; i < raw.size(); ++i) {
        invoked += raw[i].combiner_invocations;
        reused += raw[i].combiner_reused;
      }
      const std::uint64_t touched = invoked + reused;
      if (touched == 0) return 1.0;  // nothing executed: nothing was missed
      return static_cast<double>(reused) / static_cast<double>(touched);
    }
    case SloKind::kRetryRateCeiling: {
      std::uint64_t retries = 0;
      for (std::size_t i = begin; i < raw.size(); ++i) {
        retries += raw[i].task_retries;
      }
      return static_cast<double>(retries) / static_cast<double>(n);
    }
  }
  return 0;
}

bool violates(SloKind kind, double value, double threshold) {
  switch (kind) {
    case SloKind::kSlideLatencyP99:
    case SloKind::kRetryRateCeiling:
      return value > threshold;
    case SloKind::kMemoHitRateFloor:
      return value < threshold;
  }
  return false;
}

}  // namespace

SloVerdict evaluate_slo(const TimeSeriesSnapshot& series, const SloSpec& spec) {
  SloVerdict verdict;
  verdict.name = spec.name;
  verdict.kind = spec.kind;
  verdict.threshold = spec.threshold;
  const std::size_t covered = std::min(
      spec.window == 0 ? series.raw.size() : spec.window, series.raw.size());
  verdict.samples = covered;
  if (covered < std::max<std::size_t>(1, spec.min_samples)) {
    return verdict;  // vacuously ok until warm
  }
  verdict.value = window_metric(series.raw, spec.window, spec.kind);
  verdict.ok = !violates(spec.kind, verdict.value, spec.threshold);
  verdict.burn_value = window_metric(series.raw, spec.burn_window, spec.kind);
  verdict.burning =
      !verdict.ok && violates(spec.kind, verdict.burn_value, spec.threshold);
  return verdict;
}

std::vector<SloVerdict> evaluate_slos(const TimeSeriesSnapshot& series,
                                      const std::vector<SloSpec>& specs) {
  std::vector<SloVerdict> verdicts;
  verdicts.reserve(specs.size());
  for (const SloSpec& spec : specs) {
    verdicts.push_back(evaluate_slo(series, spec));
  }
  return verdicts;
}

std::string slo_verdicts_to_json(const std::vector<SloVerdict>& verdicts) {
  JsonWriter json;
  json.begin_array();
  for (const SloVerdict& v : verdicts) {
    json.begin_object();
    json.key("name").value(v.name);
    json.key("kind").value(slo_kind_name(v.kind));
    json.key("threshold").value(v.threshold);
    json.key("ok").value(v.ok);
    json.key("burning").value(v.burning);
    json.key("value").value(v.value);
    json.key("burn_value").value(v.burn_value);
    json.key("samples").value(v.samples);
    json.end_object();
  }
  json.end_array();
  return json.take();
}

}  // namespace slider::obs
