// Black-box flight recorder: on chaos events, degraded-mode entry, or SLO
// breach, atomically dump the process's observability state — trace ring,
// time-series window, ledger snapshot, fault-event log, SLO verdicts — to
// a CRC-framed `*.pm.json` post-mortem file (format: postmortem.h,
// tools/slider_doctor.cc reads it back).
//
// Trigger discipline: the places that *detect* trouble are the wrong
// places to dump from. Degraded-mode entry fires inside MemoStore's
// durable mutex, chaos events fire between arbitrary stages — both would
// deadlock or tear state if they snapshotted the world on the spot. So
// triggers are split in two:
//
//   * note_fault() / request_dump() — cheap, lock-light, callable from
//     anywhere (including under storage locks): appends to a bounded
//     fault-event ring and marks a dump pending;
//   * maybe_dump() — called once per slide boundary by the session (the
//     same cold path that commits the ledger), where no subsystem lock is
//     held: if a dump is pending, armed, and not rate-limited, it
//     snapshots the global TimeSeries / WorkLedger / TraceCollector and
//     writes the frame atomically (tmp + rename).
//
// Rate limiting: at most `max_dumps` per arming and at least
// `min_slides_between_dumps` slide boundaries between consecutive dumps,
// so a persistent breach produces a bounded trail instead of a disk full
// of identical post-mortems.
//
// Process-wide singleton (like WorkLedger); disarmed by default. The
// SLIDER_POSTMORTEM_DIR env var arms it at first use.
#pragma once

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "observability/slo.h"

namespace slider::obs {

class ProvenanceRecorder;

// One noted fault event (bounded ring; embedded in every dump).
struct FaultNote {
  double sim_time = -1;  // < 0: unknown (the noting layer has no sim clock)
  std::string kind;      // e.g. "machine_crash", "durable_degraded"
  std::string detail;
  std::int64_t machine = -1;  // < 0: not machine-specific
};

class FlightRecorder {
 public:
  struct Options {
    std::string directory;  // empty = disarmed
    std::size_t max_dumps = 8;
    std::uint64_t min_slides_between_dumps = 16;
    std::size_t fault_log_capacity = 256;
  };

  // Everything maybe_dump() needs from the caller; global state
  // (TimeSeries, WorkLedger, TraceCollector) is snapshotted internally.
  struct DumpContext {
    std::string session;  // label, e.g. the tree variant
    double sim_time = 0;
    const std::vector<SloVerdict>* verdicts = nullptr;  // optional
    // Lineage history of the dumping session (provenance.h); embedded as
    // the dump's "provenance" section when non-null. Not owned.
    const ProvenanceRecorder* provenance = nullptr;
  };

  static FlightRecorder& global();

  FlightRecorder();

  // (Re)arms the recorder. An empty directory disarms it. Resets the dump
  // budget and rate limiter, keeps the fault log.
  void arm(Options options);
  bool armed() const;

  // Cheap fault note from any thread, under any subsystem lock. When
  // `request_dump` is set, the next maybe_dump() fires.
  void note_fault(std::string_view kind, std::string_view detail,
                  double sim_time = -1, std::int64_t machine = -1,
                  bool request_dump = true);

  // Marks a dump pending without recording a fault (SLO breaches: the
  // verdicts travel in the DumpContext instead).
  void request_dump(std::string_view reason);

  // Slide-boundary hook: writes a dump if one is pending, the recorder is
  // armed, and the rate limiter allows it. Returns the dump path, or ""
  // when nothing was written. Thread-safe (concurrent sessions serialize
  // on the dump mutex; each dump gets a unique file).
  std::string maybe_dump(const DumpContext& context);

  // Unconditional dump (ignores pending state and the slide-spacing rate
  // limit; still bounded by max_dumps). For tests and tools.
  std::string dump_now(std::string_view reason, const DumpContext& context);

  std::uint64_t dumps_written() const;
  std::vector<FaultNote> fault_log() const;

  // Disarms and clears all state (tests).
  void reset();

 private:
  std::string write_dump_locked(std::string_view reason,
                                const DumpContext& context);

  mutable std::mutex mutex_;
  Options options_;
  std::deque<FaultNote> fault_log_;
  bool pending_ = false;
  std::string pending_reason_;
  std::uint64_t slide_ticks_ = 0;       // maybe_dump() calls since arming
  std::uint64_t last_dump_tick_ = 0;
  bool dumped_once_ = false;
  std::uint64_t dumps_written_ = 0;
  std::uint64_t dump_counter_ = 0;  // unique filename suffix
};

}  // namespace slider::obs
