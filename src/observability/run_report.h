// Uniform machine-readable bench reports.
//
// Every bench binary regenerates one paper table/figure; RunReport gives
// them a single JSON schema so the repo's perf trajectory can be tracked
// across PRs by diffing BENCH_*.json files:
//
//   {
//     "bench": "table1_scheduler",
//     "schema_version": 1,
//     "params":  { ... experiment knobs ... },
//     "rows":    [ { "app": "K-Means", "normalized_runtime": 0.91, ... } ],
//     "counters": { ... MetricsRegistry / StatsRegistry values ... },
//     "notes":   [ "paper: ..." ]
//   }
//
// Output goes to $SLIDER_BENCH_OUT (directory) or the working directory,
// as BENCH_<bench>.json.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "common/metrics.h"

namespace slider::obs {

struct StatsSnapshot;

// Small ordered JSON value used by report cells.
using ReportValue = std::variant<double, std::int64_t, std::uint64_t, bool,
                                 std::string>;

// Fault-tolerance scoreboard (paper §6; robustness/chaos.h). Attached to a
// report as a top-level "robustness" object when set — omitted otherwise so
// failure-free bench reports keep their existing schema. `outputs_identical`
// is the headline invariant: every chaos run's outputs were byte-identical
// to the failure-free control.
struct RobustnessReport {
  std::uint64_t seeds = 0;  // chaos seeds exercised
  std::uint64_t failures_injected = 0;
  std::uint64_t crashes = 0;
  std::uint64_t recoveries = 0;
  std::uint64_t stragglers = 0;
  std::uint64_t memo_losses = 0;
  std::uint64_t durable_error_windows = 0;
  std::uint64_t task_attempts = 0;
  std::uint64_t failed_attempts = 0;
  std::uint64_t task_retries = 0;
  std::uint64_t machines_blacklisted = 0;
  std::uint64_t failure_forced_misses = 0;
  std::int64_t attempt_cap = 0;
  std::int64_t max_attempts_seen = 0;
  bool outputs_identical = true;
};

class RunReport {
 public:
  // One report row: insertion-ordered key/value cells.
  class Row {
   public:
    Row& col(std::string key, ReportValue value) {
      cells_.emplace_back(std::move(key), std::move(value));
      return *this;
    }
    Row& col(std::string key, const char* value) {
      return col(std::move(key), ReportValue(std::string(value)));
    }
    // Flattens the paper's work/time record into prefixed columns.
    Row& metrics(const std::string& prefix, const RunMetrics& m);

    const std::vector<std::pair<std::string, ReportValue>>& cells() const {
      return cells_;
    }

   private:
    std::vector<std::pair<std::string, ReportValue>> cells_;
  };

  explicit RunReport(std::string bench_name);

  RunReport& set_param(std::string key, ReportValue value);
  RunReport& set_param(std::string key, const char* value) {
    return set_param(std::move(key), ReportValue(std::string(value)));
  }
  RunReport& add_note(std::string note);
  // Attaches a flat counter map (e.g. MetricsRegistry::snapshot()).
  RunReport& set_counters(std::map<std::string, double> counters);
  // Flattens a typed-stats snapshot into the counter map: counters and
  // gauges keep their names; each histogram `h` contributes
  // h.count/.sum/.min/.max/.p50/.p95/.p99 plus h.underflow/.overflow so
  // observations outside the configured [min, max) range are visible in
  // the report instead of vanishing into untagged buckets.
  RunReport& merge_stats(const StatsSnapshot& stats);
  // Attaches the fault-tolerance section (emitted as "robustness").
  RunReport& set_robustness(RobustnessReport robustness);

  Row& add_row();

  const std::string& name() const { return name_; }
  std::size_t row_count() const { return rows_.size(); }

  std::string to_json() const;
  // "BENCH_<name>.json".
  std::string default_filename() const;
  // Writes to `directory` (or $SLIDER_BENCH_OUT, or "."). Returns the
  // written path, or an empty string on failure.
  std::string write(const std::string& directory = "") const;

 private:
  std::string name_;
  std::vector<std::pair<std::string, ReportValue>> params_;
  std::vector<Row> rows_;
  std::vector<std::string> notes_;
  std::map<std::string, double> counters_;
  std::optional<RobustnessReport> robustness_;
};

}  // namespace slider::obs
