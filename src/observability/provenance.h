// Per-slide lineage recording and explain drill-downs.
//
// A contraction tree is literally a dependence graph, so provenance falls
// out of instrumentation rather than new algorithms: every charge_* site
// in the trees also appends a NodeLineage record when the session is
// armed (SliderConfig::record_provenance), capturing the causal DAG of
// the run — which memo nodes were reused, which were recomputed and why
// (the WorkCause taxonomy), what each one cost in sim time, and a key
// sketch of the rows it covers.
//
// On top of the raw DAG this module provides:
//
//   * explain(key) — walk the recorded DAG from the apex node containing
//     a reduce key back to the leaf element ranges, returning the minimal
//     reused/recomputed frontier that produced that output.
//   * critical-path attribution — the longest sim-time dependency chain
//     of a slide as an actual node path (the per-level generalization of
//     SliderSession::contraction_critical_path()).
//
// Slides are ring-buffered with the same tiered-downsampling discipline
// as timeseries.{h,cc}: a raw ring of full per-node DAGs, evicting into
// width-limited aggregate buckets that keep the per-cause tallies and
// the worst critical path; conservation holds as
//   total_recorded == raw + Σ aggregate counts + samples_dropped.
//
// Layering: this header must not depend on contraction/tree.h (the trees
// include it to embed NodeLineage in TreeUpdateStats); node ids are plain
// std::uint64_t (storage/memo_store.h NodeId).
#pragma once

#include <array>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "observability/work_ledger.h"

namespace slider {
class KVTable;
}  // namespace slider

namespace slider::obs {

class JsonValue;

// --- per-node lineage --------------------------------------------------------

// What the tree did at this node. Together with the WorkCause this maps
// onto the user-facing disposition string (disposition_name below):
// kReuse -> "reused"; executed ops split by cause into "new" /
// "recomputed" / "evicted_recompute" / "failure_reexec" / ...
enum class LineageOp : std::uint8_t {
  kLeaf,         // a new leaf payload entered the tree
  kMerge,        // combiner executed (one or more invocations)
  kPassthrough,  // single-child level hop, no combiner work
  kReuse,        // memo hit: payload served from the store
};

std::string_view lineage_op_name(LineageOp op);

// Compact key-membership summary of a node's payload. Up to
// kSketchExactCap key hashes are stored exactly; beyond that the sketch
// degrades to a 256-bit double-probed Bloom filter (no false negatives,
// so explain() never misses a real dependency — it can only over-approximate
// on bloom-only nodes, which the Explanation flags as inexact).
inline constexpr std::uint32_t kSketchExactCap = 8;

struct KeySketch {
  std::array<std::uint64_t, 4> bloom{};
  std::array<std::uint64_t, kSketchExactCap> exact{};
  std::uint32_t exact_count = 0;  // > kSketchExactCap means bloom-only

  bool is_exact() const { return exact_count <= kSketchExactCap; }
  bool empty() const { return exact_count == 0; }
  void add_hash(std::uint64_t h);
  void merge(const KeySketch& other);
  bool may_contain_hash(std::uint64_t h) const;
};

// Hashes every key of `table` into a sketch (hash_string per key).
KeySketch sketch_of_table(const KVTable& table);

// One touched contraction node. Children reference other records of the
// same slide by node id; ids the slide did not touch are the reused /
// untouched hinterland explain() stops at.
struct NodeLineage {
  std::uint64_t id = 0;
  LineageOp op = LineageOp::kMerge;
  WorkCause cause = WorkCause::kInitialBuild;
  std::uint16_t level = 0;
  std::uint32_t invocations = 0;  // combiner invocations charged here
  std::uint64_t rows = 0;         // payload rows at this node
  std::uint64_t rows_scanned = 0; // merge input rows (cost-model units)
  double memo_cost = 0;           // sim-time memo read/write cost
  KeySketch sketch;
  bool children_truncated = false;
  std::vector<std::uint64_t> children;
};

// Caps the recorded child list of wide fold nodes (flat-tier roots fold
// the whole window); children_truncated marks the cut.
inline constexpr std::size_t kLineageChildCap = 64;

// --- process-wide sketch cache ----------------------------------------------

// NodeId -> KeySketch memo so internal merges union two cached sketches
// (O(1)) instead of rehashing payload keys (O(rows)). Sharded like the
// MemoStore; bounded; only ever touched by armed sessions.
class SketchCache {
 public:
  static SketchCache& global();

  bool lookup(std::uint64_t id, KeySketch* out) const;
  void store(std::uint64_t id, const KeySketch& sketch);
  void clear();

 private:
  static constexpr std::size_t kShards = 16;
  static constexpr std::size_t kMaxEntriesPerShard = 4096;

  struct Shard;
  SketchCache();
  Shard* shards_;  // leaked singleton storage, never destroyed
};

// --- per-slide lineage -------------------------------------------------------

struct PathNode {
  std::uint64_t id = 0;
  std::uint16_t level = 0;
  LineageOp op = LineageOp::kMerge;
  WorkCause cause = WorkCause::kInitialBuild;
  double seconds = 0;  // this node's own sim-time contribution
};

// The causal DAG of one run, plus derived tallies and the critical path
// (root-first). `partitions[p]` lists the touched nodes of partition p in
// children-before-parents order (the order the trees append them).
struct SlideLineage {
  std::uint64_t sequence = 0;  // assigned by the recorder
  RunKind kind = RunKind::kSlide;
  std::string tenant;
  double sim_start = 0;
  std::array<std::uint64_t, kWorkCauseCount> cause_invocations{};
  std::array<std::uint64_t, kWorkCauseCount> cause_nodes{};
  std::uint64_t reused_nodes = 0;
  std::uint64_t recorded_nodes = 0;
  double critical_path_seconds = 0;
  int critical_path_partition = -1;
  std::vector<PathNode> critical_path;
  std::vector<std::vector<NodeLineage>> partitions;
};

// Sim-cost parameters for critical-path weights; mirrors the session's
// PartitionShare cost model (combine cpu per scanned row + one memo
// lookup charge per touched node + recorded memo io cost).
struct LineageCostParams {
  double combine_cpu_per_row = 0;
  double memo_lookup_sec = 0;
};

// Computes tallies + critical path over `partitions` and assembles the
// slide record (sequence still unset; the recorder stamps it).
SlideLineage assemble_slide_lineage(RunKind kind, std::string_view tenant,
                                    double sim_start,
                                    std::vector<std::vector<NodeLineage>> partitions,
                                    const LineageCostParams& costs);

// Downsampled history bucket: tallies survive, per-node DAGs do not.
struct LineageAggregate {
  std::uint64_t first_sequence = 0;
  std::uint64_t count = 0;
  std::array<std::uint64_t, kWorkCauseCount> cause_invocations{};
  std::array<std::uint64_t, kWorkCauseCount> cause_nodes{};
  std::uint64_t reused_nodes = 0;
  std::uint64_t recorded_nodes = 0;
  double critical_path_seconds_max = 0;

  void fold(const SlideLineage& slide);
};

struct ProvenanceSnapshot {
  std::uint64_t total_recorded = 0;
  std::uint64_t samples_dropped = 0;  // slides beyond aggregate history
  std::vector<LineageAggregate> aggregates;
  std::vector<SlideLineage> raw;  // oldest first
};

// --- explain -----------------------------------------------------------------

struct ExplainEntry {
  std::uint64_t id = 0;
  std::uint16_t level = 0;
  LineageOp op = LineageOp::kMerge;
  WorkCause cause = WorkCause::kInitialBuild;
  std::string disposition;  // disposition_name(op, cause)
  std::uint64_t rows = 0;
  std::uint32_t invocations = 0;
  bool exact = true;  // sketch membership was exact along this entry
};

struct Explanation {
  bool found = false;  // an apex node containing the key was recorded
  std::uint64_t sequence = 0;
  RunKind kind = RunKind::kSlide;
  std::string tenant;
  int partition = 0;
  std::string key;
  std::uint64_t apex = 0;  // node id the walk started from
  std::uint16_t apex_level = 0;
  std::uint64_t walked_nodes = 0;      // records visited during the walk
  std::uint64_t untouched_children = 0;  // edges into nodes this slide never touched
  bool exact = true;  // false if any bloom-only sketch was crossed
  std::vector<ExplainEntry> frontier;  // minimal reused/recomputed frontier
};

// Walks one recorded slide's partition DAG for `key`. Deterministic:
// executed records win over reuse records of the same id (a memo miss
// emits both), higher levels win apex selection.
Explanation explain_slide(const SlideLineage& slide, std::string_view key,
                          int partition);

// Maps (op, cause) to the user-facing disposition string: "reused",
// "new", "recomputed", "evicted_recompute", "failure_reexec",
// "recovery_replay", "background", "speculative".
std::string_view disposition_name(LineageOp op, WorkCause cause);

// NodeId -> disposition over one recorded partition; the later of two
// same-id records wins, which lets the executed half of a memo-miss pair
// shadow its reuse record. Feeds /tree?format=dot disposition coloring
// (contraction/describe.h).
std::unordered_map<std::uint64_t, std::string> disposition_map(
    const SlideLineage& slide, int partition);

// --- the recorder ------------------------------------------------------------

class ProvenanceRecorder {
 public:
  struct Options {
    std::size_t raw_capacity = 32;      // full DAGs kept
    std::size_t aggregate_width = 16;   // slides folded per bucket
    std::size_t aggregate_capacity = 64;
  };

  ProvenanceRecorder();
  explicit ProvenanceRecorder(Options options);

  ProvenanceRecorder(const ProvenanceRecorder&) = delete;
  ProvenanceRecorder& operator=(const ProvenanceRecorder&) = delete;

  // Stamps the sequence and folds the slide into the tiered rings.
  void record(SlideLineage slide);

  ProvenanceSnapshot snapshot() const;
  std::uint64_t total_recorded() const;

  // Explains `key` against the newest raw slide that touched `partition`
  // (or the slide with exactly `sequence` when provided).
  Explanation explain(std::string_view key, int partition,
                      std::optional<std::uint64_t> sequence = std::nullopt) const;

  void configure(Options options);  // drops history
  void reset();

 private:
  mutable std::mutex mutex_;
  Options options_;
  std::vector<SlideLineage> raw_;
  std::size_t raw_start_ = 0, raw_size_ = 0;
  std::vector<LineageAggregate> aggregates_;
  std::size_t agg_start_ = 0, agg_size_ = 0;
  LineageAggregate open_bucket_{};
  bool open_bucket_active_ = false;
  std::uint64_t next_sequence_ = 0;
  std::uint64_t samples_dropped_ = 0;
};

// --- serialization -----------------------------------------------------------

// Node ids, key hashes, and bloom words are emitted as decimal strings:
// they are full 64-bit values and JSON numbers (and the doctor's reader)
// only carry 53 mantissa bits.
std::string provenance_to_json(const ProvenanceSnapshot& snapshot);
std::string criticalpath_to_json(const ProvenanceSnapshot& snapshot);
std::string explanation_to_json(const Explanation& explanation);

// Rehydrates a snapshot from the flight-recorder "provenance" JSON
// section (the doctor's path back into explain_slide).
ProvenanceSnapshot provenance_from_json(const JsonValue& value);

}  // namespace slider::obs
