// Causal work ledger.
//
// Slider's headline claim is that a slide performs work proportional to
// the delta (times log window) — but an aggregate combiner-invocation
// counter cannot say *why* a merge executed. A combiner run triggered by a
// window append is indistinguishable from one forced by a memo eviction or
// a post-crash recovery replay, so the paper's §7-style breakdowns would
// otherwise be read off totals on faith. This module attributes every unit
// of contraction-tree work to its cause:
//
//   initial_build            — the from-scratch first run
//   window_add               — dirty paths from freshly appended splits
//   window_remove            — voided-path passthroughs / recomputes after
//                              front-of-window removals (Fig 2)
//   memo_eviction_recompute  — re-execution forced by a memo-layer loss
//                              (budget eviction, replica failure, GC race)
//   recovery_replay          — slides re-executed after restore() to catch
//                              up to the pre-crash frontier
//   background_preprocess    — §4 split-processing background phase
//   speculative_reexec       — straggler-mitigation backup copies
//   failure_reexec           — recomputation forced by a machine failure
//                              that destroyed every intact replica of a
//                              needed memo entry (§6 fault tolerance)
//   scrub_repair             — online integrity scrubbing: at-rest bytes
//                              re-verified and replica repairs performed by
//                              durability/scrubber.h (I/O attribution; the
//                              scrubber never runs combiners itself)
//
// Accounting discipline (same as docs/threading.md): the hot paths never
// touch a shared ledger. Tree work accumulates into caller-owned
// TreeUpdateStats cells (per partition / per node, folded deterministically
// in index order) and is committed to the process-wide WorkLedger once per
// run at the slide boundary, under one cold mutex. Storage / durability /
// scheduler event notes go through per-thread sharded cells that are summed
// at snapshot time — a writer only ever touches its own cache line.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace slider::obs {

enum class WorkCause : std::uint8_t {
  kInitialBuild = 0,
  kWindowAdd,
  kWindowRemove,
  kMemoEvictionRecompute,
  kRecoveryReplay,
  kBackgroundPreprocess,
  kSpeculativeReexec,
  kFailureReexec,
  kScrubRepair,
};

inline constexpr std::size_t kWorkCauseCount = 9;

// Stable snake_case names, used as Prometheus label values and JSON keys.
std::string_view work_cause_name(WorkCause cause);

// Work observed under one (cause, tree level) bucket.
struct CauseWork {
  std::uint64_t combiner_invocations = 0;
  std::uint64_t combiner_reused = 0;
  std::uint64_t nodes_visited = 0;
  std::uint64_t rows_scanned = 0;
  std::uint64_t memo_bytes_read = 0;
  std::uint64_t memo_bytes_written = 0;

  CauseWork& operator+=(const CauseWork& o) {
    combiner_invocations += o.combiner_invocations;
    combiner_reused += o.combiner_reused;
    nodes_visited += o.nodes_visited;
    rows_scanned += o.rows_scanned;
    memo_bytes_read += o.memo_bytes_read;
    memo_bytes_written += o.memo_bytes_written;
    return *this;
  }
  bool empty() const {
    return combiner_invocations == 0 && combiner_reused == 0 &&
           nodes_visited == 0 && rows_scanned == 0 && memo_bytes_read == 0 &&
           memo_bytes_written == 0;
  }
};

struct AttributedCell {
  WorkCause cause = WorkCause::kInitialBuild;
  std::uint16_t level = 0;
  CauseWork work;
};

// Sparse per-(cause, level) accumulator. A tree operation touches a
// handful of (cause, level) pairs — at most a few causes times the tree
// height — so a small vector with linear lookup beats any map here, and
// the whole structure copies/merges trivially for the deterministic
// index-order folds the trees already perform.
class AttributedWork {
 public:
  CauseWork& cell(WorkCause cause, std::uint16_t level) {
    for (AttributedCell& c : cells_) {
      if (c.cause == cause && c.level == level) return c.work;
    }
    cells_.push_back(AttributedCell{cause, level, {}});
    return cells_.back().work;
  }

  void merge(const AttributedWork& o) {
    for (const AttributedCell& c : o.cells_) {
      if (c.work.empty()) continue;
      cell(c.cause, c.level) += c.work;
    }
  }

  const std::vector<AttributedCell>& cells() const { return cells_; }
  bool empty() const {
    for (const AttributedCell& c : cells_) {
      if (!c.work.empty()) return false;
    }
    return true;
  }

  // Sum over levels for one cause / over everything.
  CauseWork total_for(WorkCause cause) const {
    CauseWork total;
    for (const AttributedCell& c : cells_) {
      if (c.cause == cause) total += c.work;
    }
    return total;
  }
  CauseWork total() const {
    CauseWork total;
    for (const AttributedCell& c : cells_) total += c.work;
    return total;
  }

 private:
  std::vector<AttributedCell> cells_;
};

enum class RunKind : std::uint8_t { kInitial, kSlide, kBackground };
std::string_view run_kind_name(RunKind kind);

// One committed run (initial build, slide, or background phase).
struct SlideRecord {
  std::uint64_t sequence = 0;  // monotone per-process commit index
  RunKind kind = RunKind::kSlide;
  std::string tenant;  // empty for single-tenant processes
  std::size_t window_splits = 0;
  std::size_t removed = 0;
  std::size_t added = 0;
  std::vector<AttributedWork> partitions;  // indexed by reduce partition
};

// Event counters maintained through the per-thread sharded cells.
struct LedgerCounters {
  std::uint64_t eviction_forced_misses = 0;  // reads that missed because a
                                             // budget eviction dropped the id
  std::uint64_t budget_evictions = 0;
  std::uint64_t quota_evictions = 0;  // per-tenant quota policy drops
  std::uint64_t recovered_entries = 0;
  std::uint64_t recovered_bytes = 0;
  std::uint64_t speculative_reexecutions = 0;
  // Fault-tolerance counters (chaos engine / task-attempt layer).
  std::uint64_t failure_forced_misses = 0;  // reads that missed because every
                                            // replica of the entry was on a
                                            // failed machine
  std::uint64_t failures_injected = 0;      // chaos events applied + injected
                                            // task-attempt failures
  std::uint64_t task_retries = 0;           // attempt re-queues in the stage
                                            // simulator
  std::uint64_t machines_blacklisted = 0;   // per-stage blacklist decisions
  std::uint64_t degraded_mode_intervals = 0;  // durable-tier degraded entries
  // Online integrity scrubbing (durability/scrubber.h). Conservation:
  // scrub_corruptions_detected == scrub_repairs + scrub_quarantines, every
  // detection is resolved one way or the other (asserted by the bit-rot
  // soak and the scrubber unit tests).
  std::uint64_t scrub_records_verified = 0;
  std::uint64_t scrub_corruptions_detected = 0;
  std::uint64_t scrub_repairs = 0;
  std::uint64_t scrub_quarantines = 0;
};

// Per-tenant slice of the ledger: cause totals for every run committed
// under that tenant tag. Untagged (single-tenant) commits stay out of the
// tenant cells, so Σ tenants ≤ totals, with equality when every run is
// tagged (asserted by the multitenant soak's conservation check).
struct TenantWork {
  std::string tenant;
  std::array<CauseWork, kWorkCauseCount> totals{};
  std::uint64_t runs_committed = 0;
  std::uint64_t total_invocations() const {
    std::uint64_t sum = 0;
    for (const CauseWork& w : totals) sum += w.combiner_invocations;
    return sum;
  }
};

struct LedgerSnapshot {
  // Process-lifetime totals per cause (sums over all committed runs).
  std::array<CauseWork, kWorkCauseCount> totals{};
  LedgerCounters counters;
  std::uint64_t runs_committed = 0;
  // Most recent runs, oldest first (bounded by the ledger history limit).
  std::vector<SlideRecord> recent;
  // Per-tenant cells, sorted by tenant name (empty in single-tenant runs).
  std::vector<TenantWork> tenants;

  const CauseWork& total_for(WorkCause cause) const {
    return totals[static_cast<std::size_t>(cause)];
  }
  // Σ combiner invocations over every cause — must equal the aggregate
  // "tree.combiner_invocations" stats counter (the ledger conservation
  // property; asserted in tests/test_work_ledger.cc).
  std::uint64_t total_invocations() const {
    std::uint64_t sum = 0;
    for (const CauseWork& w : totals) sum += w.combiner_invocations;
    return sum;
  }
};

// Serializes a snapshot as a standalone JSON document (the /ledger.json
// introspection route).
std::string ledger_to_json(const LedgerSnapshot& snapshot);

// Process-wide causal work ledger.
//
// commit_run() is the cold once-per-run path (one mutex). The note_*()
// methods are callable from any thread at any time (storage eviction
// handlers, recovery, the stage scheduler); they write per-thread cells
// and never contend with each other or with commit_run().
class WorkLedger {
 public:
  static WorkLedger& global();

  WorkLedger();
  ~WorkLedger();
  WorkLedger(const WorkLedger&) = delete;
  WorkLedger& operator=(const WorkLedger&) = delete;

  // Commits one run's per-partition attributed work at a slide boundary.
  // `tenant` (empty for single-tenant processes) additionally books the
  // work into that tenant's ledger cell.
  void commit_run(RunKind kind, std::size_t window_splits, std::size_t removed,
                  std::size_t added,
                  const std::vector<AttributedWork>& partitions,
                  std::string_view tenant = {});

  // Hot-path-safe event notes (per-thread cells, no shared mutation).
  void note_eviction_forced_miss(std::uint64_t count = 1);
  void note_budget_eviction(std::uint64_t count = 1);
  void note_quota_eviction(std::uint64_t count = 1);
  void note_recovery(std::uint64_t entries, std::uint64_t bytes);
  void note_speculative_reexec(std::uint64_t count = 1);
  void note_failure_forced_miss(std::uint64_t count = 1);
  void note_failure_injected(std::uint64_t count = 1);
  void note_task_retry(std::uint64_t count = 1);
  void note_machine_blacklisted(std::uint64_t count = 1);
  void note_degraded_interval(std::uint64_t count = 1);
  // Scrub-slice outcome: `verified` at-rest records re-checked, of which
  // `detected` were corrupt/diverged, resolved as `repairs` re-appends from
  // a healthy replica plus `quarantines` segment renames.
  void note_scrub(std::uint64_t verified, std::uint64_t detected,
                  std::uint64_t repairs, std::uint64_t quarantines);

  // How many SlideRecords snapshot() retains (default 64; 0 disables the
  // per-run history and keeps only the totals).
  void set_history_limit(std::size_t limit);

  LedgerSnapshot snapshot() const;
  std::string to_json() const { return ledger_to_json(snapshot()); }

  // Zeroes totals, history, and every thread's event cells. Only safe when
  // no writer is mid-flight (tests, tool startup).
  void reset();

 private:
  struct ThreadCell;
  ThreadCell& local_cell();

  mutable std::mutex mutex_;  // guards totals_, history_, cells_ list
  std::array<CauseWork, kWorkCauseCount> totals_{};
  // Keyed and emitted in name order so snapshots are deterministic.
  std::map<std::string, TenantWork, std::less<>> tenant_totals_;
  std::uint64_t runs_committed_ = 0;
  std::uint64_t next_sequence_ = 0;
  std::size_t history_limit_ = 64;
  std::deque<SlideRecord> history_;
  // Sharded event cells: one per thread that ever noted an event. Cells
  // are owned here and never freed (bounded by peak thread count), so a
  // note from a dying thread can never dangle.
  std::vector<std::unique_ptr<ThreadCell>> cells_;
};

}  // namespace slider::obs
