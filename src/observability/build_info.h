// Build identity, stamped by CMake at configure time (the values live in
// the generated build_info.cc) plus process-set runtime labels. Exposed on
// /metrics as the standard Prometheus build-info convention:
//
//   slider_build_info{version="...",git_sha="...",build_type="...",
//                     tree_variant="..."} 1
//
// A constant-1 gauge whose labels carry the identity — dashboards join it
// against every other series to answer "which build/variant produced
// this". The tree_variant label is set at runtime by the first session
// (set_build_label), since the variant is a per-session decision.
#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace slider::obs {

struct BuildInfo {
  const char* version;
  const char* git_sha;
  const char* build_type;
};

// Configure-time constants (generated build_info.cc).
const BuildInfo& build_info();

// Additional runtime labels on slider_build_info (last set wins per key).
// Values are sanitized into the exposition by prometheus_text.
void set_build_label(std::string key, std::string value);
std::vector<std::pair<std::string, std::string>> build_labels();

// The complete exposition line (no trailing newline), pure function of
// build_info() + build_labels().
std::string build_info_prometheus_line();

}  // namespace slider::obs
