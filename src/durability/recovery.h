// Replica-merging recovery (paper §6: two persistent copies of every memo
// entry survive single-replica loss).
//
// The durable tier keeps one segment log per replica:
//
//   <root>/replica-0/seg-*.slog
//   <root>/replica-1/seg-*.slog
//
// Recovery scans every replica's log (tolerating torn tails and CRC
// failures per the SegmentLog recovery contract) and merges records by
// key: the record with the highest writer sequence number wins, across
// replicas. A key whose winning record is a tombstone is dropped. Because
// both replicas carry every record, a record lost to corruption in one
// replica is still served from the other — the property the bit-flip
// fault-injection tests pin down.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "durability/segment_log.h"

namespace slider::durability {

struct RecoveredEntry {
  std::uint64_t seq = 0;
  std::string payload;
};

struct RecoveryStats {
  LogScanStats scan;  // summed over all replicas
  std::uint64_t replicas_scanned = 0;
  std::uint64_t entries_recovered = 0;   // live keys after the merge
  std::uint64_t tombstoned_keys = 0;     // keys whose winner was a tombstone
  std::uint64_t duplicate_records = 0;   // superseded by a higher seq
  double wall_seconds = 0;
};

// Path of replica `index` under a durable-tier root.
std::string replica_dir(const std::string& root, std::size_t index);

// Replica subdirectories that exist under `root`, in index order.
std::vector<std::string> list_replica_dirs(const std::string& root);

// Merges the segment logs in `replica_dirs` into the per-key newest state.
// Torn tails are physically repaired so a writer can reopen the logs.
// Counts land in the durability.* instruments and `stats` (if non-null).
std::unordered_map<LogKey, RecoveredEntry> recover_replicas(
    const std::vector<std::string>& replica_dirs, RecoveryStats* stats);

}  // namespace slider::durability
