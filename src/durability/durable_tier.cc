#include "durability/durable_tier.h"

#include <utility>

namespace slider::durability {

DurableTier::DurableTier(std::string root, DurableTierOptions options)
    : root_(std::move(root)), options_(options) {
  logs_.reserve(options_.replicas);
  for (std::size_t i = 0; i < options_.replicas; ++i) {
    logs_.push_back(
        std::make_unique<SegmentLog>(replica_dir(root_, i), options_.log));
  }
}

std::unordered_map<LogKey, RecoveredEntry> DurableTier::recover(
    RecoveryStats* stats) {
  std::vector<std::string> dirs;
  dirs.reserve(logs_.size());
  for (const auto& log : logs_) dirs.push_back(log->dir());
  return recover_replicas(dirs, stats);
}

std::size_t DurableTier::put(LogKey key, std::uint64_t seq,
                             std::string_view payload) {
  std::size_t accepted = 0;
  for (auto& log : logs_) {
    if (log->append(LogRecordType::kPut, seq, key, payload)) ++accepted;
  }
  if (accepted > 0) {
    bytes_since_compact_ +=
        payload.size() + 25;  // frame overhead: 8B header + 17B body prefix
  }
  return accepted;
}

std::size_t DurableTier::tombstone(LogKey key, std::uint64_t seq) {
  std::size_t accepted = 0;
  for (auto& log : logs_) {
    if (log->append(LogRecordType::kTombstone, seq, key, {})) ++accepted;
  }
  if (accepted > 0) bytes_since_compact_ += 25;
  return accepted;
}

void DurableTier::flush() {
  for (auto& log : logs_) log->flush();
}

void DurableTier::sync() {
  for (auto& log : logs_) log->sync();
}

void DurableTier::close() {
  for (auto& log : logs_) log->close();
}

bool DurableTier::all_failed() const {
  for (const auto& log : logs_) {
    if (!log->failed()) return false;
  }
  return true;
}

std::size_t DurableTier::failed_replicas() const {
  std::size_t count = 0;
  for (const auto& log : logs_) count += log->failed() ? 1 : 0;
  return count;
}

std::size_t DurableTier::reopen_failed() {
  std::size_t reopened = 0;
  for (auto& log : logs_) {
    if (!log->failed()) continue;
    log->reopen();
    if (!log->failed()) ++reopened;
  }
  if (reopened > 0) ++mutation_epoch_;
  return reopened;
}

std::optional<SegmentLog::CompactionResult> DurableTier::maybe_compact(
    const std::unordered_set<LogKey>& live) {
  if (options_.compact_after_bytes == 0 ||
      bytes_since_compact_ < options_.compact_after_bytes) {
    return std::nullopt;
  }
  return compact(live);
}

SegmentLog::CompactionResult DurableTier::compact(
    const std::unordered_set<LogKey>& live) {
  SegmentLog::CompactionResult total;
  for (auto& log : logs_) {
    const auto result = log->compact(live);
    total.bytes_before += result.bytes_before;
    total.bytes_after += result.bytes_after;
    total.records_dropped += result.records_dropped;
  }
  bytes_since_compact_ = 0;
  ++mutation_epoch_;
  return total;
}

void DurableTier::set_fault_injector(std::size_t replica,
                                     FaultInjector* injector) {
  if (replica < logs_.size()) logs_[replica]->set_fault_injector(injector);
}

std::uint64_t DurableTier::bytes_on_disk() const {
  std::uint64_t total = 0;
  for (const auto& log : logs_) total += SegmentLog::dir_bytes(log->dir());
  return total;
}

std::uint64_t DurableTier::records_appended() const {
  std::uint64_t total = 0;
  for (const auto& log : logs_) total += log->records_appended();
  return total;
}

}  // namespace slider::durability
