// Online integrity scrubbing + anti-entropy replica repair (paper §6,
// extended for long-lived serving: recovery-time merging is not enough
// when the process does not restart for weeks).
//
// An IntegrityScrubber walks a DurableTier's at-rest segment records in
// budgeted slices — the session drives one slice per slide boundary
// (SliderConfig::scrub_records_per_slide; 0 keeps the scrubber disarmed
// with zero overhead). A full pass over every replica:
//
//   1. re-verifies each record's CRC32C frame against the bytes on disk;
//   2. tracks the newest seq per key per replica, plus a global winner
//      locator (replica, segment, offset) for each key;
//   3. at pass end, cross-checks replicas against the winners: a replica
//      whose newest seq for a key lags the winner is healed by re-reading
//      the winner frame from the donor replica (re-verified) and
//      re-appending it — recovery merges by max seq per key, so duplicate
//      same-seq records are harmless;
//   4. a segment with a corrupt frame is quarantined: its still-decodable
//      records are re-appended to the replica's live log, then the file is
//      renamed `*.quarantine` (never deleted; the `seg-*.slog` pattern in
//      list_segments keeps quarantined files out of every future scan).
//
// Conservation invariant, counted at resolution time so it holds at every
// instant: corruptions_detected == repairs + quarantines. A detection that
// cannot be resolved yet (replica log failed/degraded, donor unreadable)
// is not counted and is retried on the next pass.
//
// Concurrency: the scrubber is NOT thread-safe and shares segment files
// with the writer — MemoStore drives it under the same durable mutex that
// serializes appends, compaction, and the degraded-mode drain. Compaction
// or a degraded-log reopen replaces files mid-pass; the scrubber snapshots
// DurableTier::mutation_epoch() at pass start and abandons the pass when
// it moves.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "durability/durable_tier.h"

namespace slider::durability {

struct ScrubStats {
  std::uint64_t records_verified = 0;
  std::uint64_t bytes_verified = 0;
  std::uint64_t corruptions_detected = 0;
  std::uint64_t repairs = 0;      // healed via re-append from a donor replica
  std::uint64_t quarantines = 0;  // corrupt segments renamed *.quarantine
  std::uint64_t repair_bytes_written = 0;
  std::uint64_t full_passes = 0;       // completed walks of the whole tier
  std::uint64_t passes_abandoned = 0;  // mutation epoch moved mid-pass

  // Every detection is resolved as exactly one repair or one quarantine.
  bool conserved() const {
    return corruptions_detected == repairs + quarantines;
  }

  ScrubStats& operator+=(const ScrubStats& o) {
    records_verified += o.records_verified;
    bytes_verified += o.bytes_verified;
    corruptions_detected += o.corruptions_detected;
    repairs += o.repairs;
    quarantines += o.quarantines;
    repair_bytes_written += o.repair_bytes_written;
    full_passes += o.full_passes;
    passes_abandoned += o.passes_abandoned;
    return *this;
  }
};

class IntegrityScrubber {
 public:
  explicit IntegrityScrubber(DurableTier& tier);

  IntegrityScrubber(const IntegrityScrubber&) = delete;
  IntegrityScrubber& operator=(const IntegrityScrubber&) = delete;

  // Verifies up to `record_budget` at-rest record frames, resuming where
  // the previous slice left off; the slice that finishes the last replica
  // also runs the cross-replica anti-entropy check and its repairs.
  // Returns the slice's delta (also folded into stats()). The caller must
  // hold whatever lock serializes writes to the tier.
  ScrubStats scrub_slice(std::uint64_t record_budget);

  // Lifetime totals across every slice.
  const ScrubStats& stats() const { return stats_; }

 private:
  struct SegmentState {
    std::string path;        // current path (updated on quarantine rename)
    std::uint64_t bound = 0; // size at pass start; bytes past it are unscanned
  };
  // Where the newest copy of a key lives, for donor re-reads at pass end.
  struct Winner {
    std::uint64_t seq = 0;
    std::uint8_t type = 0;
    std::uint32_t replica = 0;
    std::uint32_t segment = 0;  // index into segments_[replica]
    std::uint64_t offset = 0;   // frame start within the segment file
  };

  void begin_pass();
  void abandon_pass();
  // Scans frames of the current segment until the budget runs out or the
  // segment is finished. Returns true when the segment is finished.
  bool scan_segment_slice(ScrubStats& slice, std::uint64_t& budget);
  // Segment finished: quarantine it if corrupt, then advance the cursor.
  void finish_segment(ScrubStats& slice);
  void cross_check(ScrubStats& slice);

  DurableTier& tier_;
  ScrubStats stats_;

  bool pass_active_ = false;
  std::uint64_t pass_epoch_ = 0;
  std::vector<std::vector<SegmentState>> segments_;  // per replica, oldest first
  std::size_t replica_i_ = 0;
  std::size_t segment_i_ = 0;
  std::uint64_t offset_ = 0;
  bool segment_corrupt_ = false;
  // Intact records of the in-progress segment, kept so a quarantine can
  // re-append them to the live log (bounded by the segment size).
  std::vector<LogRecord> survivors_;
  std::vector<std::unordered_map<LogKey, std::uint64_t>> newest_;  // per replica
  std::unordered_map<LogKey, Winner> winners_;
};

}  // namespace slider::durability
