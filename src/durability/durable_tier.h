// Replicated persistent tier for the memoization layer (paper §6).
//
// A DurableTier owns `replicas` segment logs under one root directory:
//
//   <root>/replica-0/seg-*.slog
//   <root>/replica-1/seg-*.slog
//
// and mirrors every put/tombstone into all of them, so any single replica
// surviving intact is enough to recover every entry. Writer sequence
// numbers are assigned by the caller (MemoStore owns the sequence space);
// recovery merges replicas by highest seq per key (recovery.h).
//
// Compaction piggybacks on the memo GC: MemoStore::retain_only already
// computes the live-node set, and maybe_compact() rewrites the logs down
// to it once enough garbage has accumulated.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "durability/recovery.h"
#include "durability/segment_log.h"

namespace slider::durability {

struct DurableTierOptions {
  std::size_t replicas = 2;  // matches MemoStore::kReplicas
  SegmentLogOptions log;
  // maybe_compact() rewrites the logs once this many bytes were appended
  // since the last compaction. 0 disables automatic compaction.
  std::uint64_t compact_after_bytes = 256ull << 10;
};

class DurableTier {
 public:
  explicit DurableTier(std::string root, DurableTierOptions options = {});

  DurableTier(const DurableTier&) = delete;
  DurableTier& operator=(const DurableTier&) = delete;

  // Merges all replica logs into the newest per-key state (tolerating torn
  // tails and corrupt records per the SegmentLog recovery contract). Call
  // before the first put of a fresh process; appends made earlier in this
  // process would be scanned too (harmlessly — they are the newest).
  std::unordered_map<LogKey, RecoveredEntry> recover(
      RecoveryStats* stats = nullptr);

  // Appends one put/tombstone to every replica. Returns how many replicas
  // accepted the record — 0 means the entry is not durable at all, any
  // value > 0 means it will survive recovery.
  std::size_t put(LogKey key, std::uint64_t seq, std::string_view payload);
  std::size_t tombstone(LogKey key, std::uint64_t seq);

  void flush();
  void sync();
  void close();

  // True when every replica log has failed (nothing is durable anymore).
  bool all_failed() const;
  // Number of replica logs currently marked failed.
  std::size_t failed_replicas() const;

  // Reopens every failed replica log in a fresh segment (degraded-mode
  // recovery: transient write errors mark logs failed; once the condition
  // clears, reopen and resume). Returns how many logs were reopened.
  std::size_t reopen_failed();

  // Compacts every replica down to `live` if compact_after_bytes of new
  // records accumulated since the last compaction (nullopt otherwise).
  std::optional<SegmentLog::CompactionResult> maybe_compact(
      const std::unordered_set<LogKey>& live);
  // Unconditional compaction; result aggregates all replicas.
  SegmentLog::CompactionResult compact(
      const std::unordered_set<LogKey>& live);

  // Fault injection on one replica's low-level writes. Not owned.
  void set_fault_injector(std::size_t replica, FaultInjector* injector);

  const std::string& root() const { return root_; }
  std::size_t replicas() const { return logs_.size(); }
  SegmentLog& log(std::size_t replica) { return *logs_[replica]; }
  std::uint64_t bytes_on_disk() const;
  std::uint64_t records_appended() const;

  // Bumped whenever segment files may have been replaced or removed
  // (compaction, degraded-log reopen). The integrity scrubber snapshots
  // this at pass start and abandons the pass when it moves — its per-pass
  // file cursors would otherwise point at deleted segments.
  std::uint64_t mutation_epoch() const { return mutation_epoch_; }

 private:
  std::string root_;
  DurableTierOptions options_;
  std::vector<std::unique_ptr<SegmentLog>> logs_;
  std::uint64_t bytes_since_compact_ = 0;
  std::uint64_t mutation_epoch_ = 0;
};

}  // namespace slider::durability
