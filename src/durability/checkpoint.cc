#include "durability/checkpoint.h"

#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <system_error>
#include <utility>

#include "common/crc32c.h"
#include "common/logging.h"
#include "data/serde.h"
#include "observability/stats.h"

namespace slider::durability {
namespace {

constexpr char kMagic[8] = {'S', 'L', 'I', 'D', 'R', 'C', 'K', 'P'};

enum NodeMarker : std::uint8_t {
  kNull = 0,
  kByRef = 1,
  kInline = 2,
};

}  // namespace

void CheckpointWriter::put_node(std::uint64_t id, const KVTable* table) {
  wire::put_u64(blob_, id);
  if (table == nullptr) {
    wire::put_u8(blob_, kNull);
    return;
  }
  const bool resolvable =
      id != 0 && (inlined_.count(id) != 0 ||
                  (persisted_ && persisted_(id)));
  if (resolvable) {
    wire::put_u8(blob_, kByRef);
    return;
  }
  wire::put_u8(blob_, kInline);
  wire::put_bytes(blob_, serialize_table(*table));
  if (id != 0) inlined_.insert(id);
}

bool CheckpointWriter::write_manifest(const std::string& path) const {
  std::string header;
  header.append(kMagic, sizeof(kMagic));
  wire::put_u32(header, kCheckpointVersion);
  wire::put_u32(header, crc32c(blob_));
  wire::put_u64(header, blob_.size());

  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return false;
  bool ok = std::fwrite(header.data(), 1, header.size(), f) == header.size();
  ok = ok &&
       std::fwrite(blob_.data(), 1, blob_.size(), f) == blob_.size();
  ok = ok && std::fflush(f) == 0;
  if (ok) ::fsync(fileno(f));
  std::fclose(f);
  if (!ok) {
    std::error_code ec;
    std::filesystem::remove(tmp, ec);
    return false;
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::filesystem::remove(tmp, ec);
    return false;
  }
  auto& reg = obs::StatsRegistry::global();
  reg.counter("durability.checkpoints_written").add();
  reg.counter("durability.checkpoint_bytes")
      .add(header.size() + blob_.size());
  return true;
}

std::unique_ptr<CheckpointReader> CheckpointReader::open(
    const std::string& path, ResolveFn resolve) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return nullptr;

  char magic[sizeof(kMagic)];
  std::string fixed(4 + 4 + 8, '\0');
  bool ok = std::fread(magic, 1, sizeof(magic), f) == sizeof(magic) &&
            std::memcmp(magic, kMagic, sizeof(kMagic)) == 0 &&
            std::fread(fixed.data(), 1, fixed.size(), f) == fixed.size();
  std::uint32_t version = 0;
  std::uint32_t expect_crc = 0;
  std::uint64_t blob_size = 0;
  std::string blob;
  if (ok) {
    std::string_view cursor(fixed);
    wire::get_u32(cursor, &version);
    wire::get_u32(cursor, &expect_crc);
    wire::get_u64(cursor, &blob_size);
    ok = version == kCheckpointVersion && blob_size <= (1ull << 32);
  }
  if (ok) {
    blob.resize(static_cast<std::size_t>(blob_size));
    ok = std::fread(blob.data(), 1, blob.size(), f) == blob.size();
  }
  std::fclose(f);
  // The blob starts right after the fixed header: 8B magic + 4B version +
  // 4B crc + 8B blob_size = byte offset 24.
  constexpr std::size_t kBlobOffset = sizeof(kMagic) + 4 + 4 + 8;
  if (!ok) {
    SLIDER_LOG(Warning) << "checkpoint: rejecting manifest " << path
                        << ": bad magic, header, or truncated blob (declared "
                        << blob_size << " blob bytes at file offset "
                        << kBlobOffset << ")";
    return nullptr;
  }
  const std::uint32_t actual_crc = crc32c(blob);
  if (actual_crc != expect_crc) {
    char expect_hex[16];
    char actual_hex[16];
    std::snprintf(expect_hex, sizeof(expect_hex), "0x%08x", expect_crc);
    std::snprintf(actual_hex, sizeof(actual_hex), "0x%08x", actual_crc);
    SLIDER_LOG(Warning) << "checkpoint: rejecting manifest " << path
                        << ": blob crc mismatch (expected " << expect_hex
                        << ", actual " << actual_hex << " over " << blob.size()
                        << " bytes at file offset " << kBlobOffset
                        << "; header intact, corruption is inside the blob)";
    return nullptr;
  }
  obs::StatsRegistry::global().counter("durability.checkpoints_loaded").add();
  return std::unique_ptr<CheckpointReader>(
      new CheckpointReader(std::move(blob), std::move(resolve)));
}

bool CheckpointReader::get_u8(std::uint8_t* v) {
  std::string_view cursor = rest();
  if (!wire::get_u8(cursor, v)) return false;
  advance_to(cursor);
  return true;
}

bool CheckpointReader::get_u32(std::uint32_t* v) {
  std::string_view cursor = rest();
  if (!wire::get_u32(cursor, v)) return false;
  advance_to(cursor);
  return true;
}

bool CheckpointReader::get_u64(std::uint64_t* v) {
  std::string_view cursor = rest();
  if (!wire::get_u64(cursor, v)) return false;
  advance_to(cursor);
  return true;
}

bool CheckpointReader::get_bytes(std::string* out) {
  std::string_view cursor = rest();
  if (!wire::get_bytes(cursor, out)) return false;
  advance_to(cursor);
  return true;
}

bool CheckpointReader::get_node(std::uint64_t* id,
                                std::shared_ptr<const KVTable>* table) {
  std::uint8_t marker = 0;
  if (!get_u64(id) || !get_u8(&marker)) return false;
  switch (marker) {
    case kNull:
      table->reset();
      return true;
    case kByRef: {
      const auto cached = cache_.find(*id);
      if (cached != cache_.end()) {
        *table = cached->second;
        return true;
      }
      if (!resolve_) return false;
      auto resolved = resolve_(*id);
      if (resolved == nullptr) {
        SLIDER_LOG(Warning)
            << "checkpoint: unresolvable node reference " << *id;
        return false;
      }
      cache_.emplace(*id, resolved);
      *table = std::move(resolved);
      return true;
    }
    case kInline: {
      std::string bytes;
      if (!get_bytes(&bytes)) return false;
      auto decoded = deserialize_table(bytes);
      if (!decoded.has_value()) return false;
      auto shared = std::make_shared<const KVTable>(*std::move(decoded));
      if (*id != 0) cache_.emplace(*id, shared);
      *table = std::move(shared);
      return true;
    }
    default:
      return false;
  }
}

}  // namespace slider::durability
