#include "durability/scrubber.h"

#include <cstdio>
#include <filesystem>
#include <optional>
#include <system_error>

#include "common/crc32c.h"
#include "common/logging.h"
#include "data/serde.h"
#include "observability/flight_recorder.h"
#include "observability/stats.h"
#include "observability/work_ledger.h"

namespace slider::durability {
namespace {

namespace fs = std::filesystem;

struct ScrubInstruments {
  obs::Counter& records_verified;
  obs::Counter& corruptions_detected;
  obs::Counter& repairs;
  obs::Counter& quarantines;
};

ScrubInstruments& instruments() {
  auto& reg = obs::StatsRegistry::global();
  static ScrubInstruments inst{
      reg.counter("scrub.records_verified"),
      reg.counter("scrub.corruptions_detected"),
      reg.counter("scrub.repairs"),
      reg.counter("scrub.quarantines"),
  };
  return inst;
}

// Reads and re-verifies one frame at `offset`. nullopt when the frame is
// unreadable or fails its CRC — callers treat that as "donor lost", never
// as data to propagate.
std::optional<LogRecord> read_frame(const std::string& path,
                                    std::uint64_t offset) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return std::nullopt;
  std::optional<LogRecord> result;
  do {
    if (std::fseek(f, static_cast<long>(offset), SEEK_SET) != 0) break;
    char header[kLogHeaderBytes];
    if (std::fread(header, 1, sizeof(header), f) < sizeof(header)) break;
    std::string_view hv(header, sizeof(header));
    std::uint32_t body_len = 0;
    std::uint32_t expect_crc = 0;
    wire::get_u32(hv, &body_len);
    wire::get_u32(hv, &expect_crc);
    if (body_len < kLogBodyFixedBytes || body_len > kLogMaxPlausibleBody) break;
    std::string buf(body_len, '\0');
    if (std::fread(buf.data(), 1, body_len, f) < body_len) break;
    if (crc32c(buf) != expect_crc) break;
    std::string_view body(buf);
    LogRecord record;
    std::uint8_t type = 0;
    wire::get_u8(body, &type);
    wire::get_u64(body, &record.seq);
    wire::get_u64(body, &record.key);
    record.type = static_cast<LogRecordType>(type);
    record.payload.assign(body);
    result = std::move(record);
  } while (false);
  std::fclose(f);
  return result;
}

std::uint64_t frame_bytes(const LogRecord& record) {
  return kLogHeaderBytes + kLogBodyFixedBytes + record.payload.size();
}

}  // namespace

IntegrityScrubber::IntegrityScrubber(DurableTier& tier) : tier_(tier) {}

void IntegrityScrubber::begin_pass() {
  // Flush active segments so every completed append is within the bounds
  // we are about to snapshot.
  tier_.flush();
  pass_epoch_ = tier_.mutation_epoch();
  segments_.assign(tier_.replicas(), {});
  newest_.assign(tier_.replicas(), {});
  winners_.clear();
  survivors_.clear();
  replica_i_ = 0;
  segment_i_ = 0;
  offset_ = 0;
  segment_corrupt_ = false;
  bool any = false;
  for (std::size_t r = 0; r < tier_.replicas(); ++r) {
    for (const std::string& path :
         SegmentLog::list_segments(tier_.log(r).dir())) {
      std::error_code ec;
      const auto size = fs::file_size(path, ec);
      if (ec) continue;
      segments_[r].push_back(
          SegmentState{path, static_cast<std::uint64_t>(size)});
      any = any || size > 0;
    }
  }
  pass_active_ = any;
}

void IntegrityScrubber::abandon_pass() {
  pass_active_ = false;
  segments_.clear();
  newest_.clear();
  winners_.clear();
  survivors_.clear();
  ++stats_.passes_abandoned;
}

bool IntegrityScrubber::scan_segment_slice(ScrubStats& slice,
                                           std::uint64_t& budget) {
  const SegmentState& seg = segments_[replica_i_][segment_i_];
  std::FILE* f = std::fopen(seg.path.c_str(), "rb");
  if (f == nullptr) return true;  // vanished without an epoch bump; move on
  if (std::fseek(f, static_cast<long>(offset_), SEEK_SET) != 0) {
    std::fclose(f);
    return true;
  }
  bool finished = false;
  std::string buf;
  while (budget > 0) {
    if (offset_ + kLogHeaderBytes > seg.bound) {
      finished = true;  // torn/partial tail relative to the snapshot bound
      break;
    }
    char header[kLogHeaderBytes];
    if (std::fread(header, 1, sizeof(header), f) < sizeof(header)) {
      finished = true;
      break;
    }
    std::string_view hv(header, sizeof(header));
    std::uint32_t body_len = 0;
    std::uint32_t expect_crc = 0;
    wire::get_u32(hv, &body_len);
    wire::get_u32(hv, &expect_crc);
    if (body_len < kLogBodyFixedBytes || body_len > kLogMaxPlausibleBody) {
      // Framing garbage: resyncing would trust a corrupt length, so the
      // rest of this segment is unverifiable — quarantine it.
      if (!segment_corrupt_) {
        segment_corrupt_ = true;
        obs::FlightRecorder::global().note_fault(
            "scrub_corruption",
            "implausible frame length in " + seg.path + " at offset " +
                std::to_string(offset_));
      }
      finished = true;
      break;
    }
    if (offset_ + kLogHeaderBytes + body_len > seg.bound) {
      finished = true;  // record extends past the snapshot bound (torn)
      break;
    }
    buf.resize(body_len);
    if (std::fread(buf.data(), 1, body_len, f) < body_len) {
      finished = true;
      break;
    }
    const std::uint64_t frame_offset = offset_;
    offset_ += kLogHeaderBytes + body_len;
    --budget;
    if (crc32c(buf) != expect_crc) {
      // Mid-file bit rot: the length was plausible, so resync at the next
      // frame boundary and keep collecting survivors; the segment itself
      // is quarantined once the scan reaches its end.
      if (!segment_corrupt_) {
        segment_corrupt_ = true;
        obs::FlightRecorder::global().note_fault(
            "scrub_corruption", "crc mismatch in " + seg.path +
                                    " at offset " +
                                    std::to_string(frame_offset));
      }
      continue;
    }
    std::string_view body(buf);
    LogRecord record;
    std::uint8_t type = 0;
    wire::get_u8(body, &type);
    wire::get_u64(body, &record.seq);
    wire::get_u64(body, &record.key);
    record.type = static_cast<LogRecordType>(type);
    record.payload.assign(body);

    ++slice.records_verified;
    slice.bytes_verified += kLogHeaderBytes + body_len;
    auto& replica_newest = newest_[replica_i_][record.key];
    if (record.seq > replica_newest) replica_newest = record.seq;
    Winner& win = winners_[record.key];
    if (record.seq > win.seq) {
      win.seq = record.seq;
      win.type = type;
      win.replica = static_cast<std::uint32_t>(replica_i_);
      win.segment = static_cast<std::uint32_t>(segment_i_);
      win.offset = frame_offset;
    }
    // Survivors are only kept once corruption has been seen (the frames
    // the resync scan recovered *after* the first corrupt one); the intact
    // prefix before it is re-read from the file by finish_segment(), so
    // the happy path never copies payloads aside.
    if (segment_corrupt_) survivors_.push_back(std::move(record));
  }
  std::fclose(f);
  return finished;
}

void IntegrityScrubber::finish_segment(ScrubStats& slice) {
  SegmentState& seg = segments_[replica_i_][segment_i_];
  if (segment_corrupt_) {
    SegmentLog& log = tier_.log(replica_i_);
    if (!log.failed()) {
      // Seal the active segment first: renaming the file under the writer
      // would silently divert future appends into the quarantine file.
      if (seg.path == log.active_path()) log.rotate_now();
      // Re-append the segment's still-decodable records to the live log
      // (original seqs: recovery merges by max seq, duplicates are
      // harmless). The intact prefix before the first corrupt frame was
      // not copied aside during the scan; re-read it from the file — the
      // read stops exactly at the corrupt frame. Frames the resync scan
      // recovered past it are in survivors_.
      bool saved = true;
      std::uint64_t read_offset = 0;
      while (read_offset + kLogHeaderBytes <= seg.bound) {
        const auto record = read_frame(seg.path, read_offset);
        if (!record.has_value()) break;  // first corrupt/torn frame
        read_offset += frame_bytes(*record);
        if (!log.append(record->type, record->seq, record->key,
                        record->payload)) {
          saved = false;
          break;
        }
        slice.repair_bytes_written += frame_bytes(*record);
      }
      if (saved) {
        for (const LogRecord& record : survivors_) {
          if (!log.append(record.type, record.seq, record.key,
                          record.payload)) {
            saved = false;
            break;
          }
          slice.repair_bytes_written += frame_bytes(record);
        }
      }
      log.flush();
      if (saved) {
        const std::string quarantine_path = seg.path + ".quarantine";
        std::error_code ec;
        fs::rename(seg.path, quarantine_path, ec);
        if (!ec) {
          SLIDER_LOG(Warning)
              << "scrub: quarantined corrupt segment " << seg.path << " -> "
              << quarantine_path;
          seg.path = quarantine_path;  // winner locators keep resolving
          ++slice.corruptions_detected;
          ++slice.quarantines;
          instruments().corruptions_detected.add();
          instruments().quarantines.add();
          obs::FlightRecorder::global().note_fault(
              "scrub_quarantine", quarantine_path);
        }
      }
      // On any failure above the detection stays uncounted and the segment
      // stays in place; the next pass retries once the log is healthy.
    }
  }
  survivors_.clear();
  segment_corrupt_ = false;
  ++segment_i_;
  offset_ = 0;
}

void IntegrityScrubber::cross_check(ScrubStats& slice) {
  for (const auto& [key, win] : winners_) {
    for (std::size_t r = 0; r < newest_.size(); ++r) {
      if (r == win.replica) continue;
      const auto it = newest_[r].find(key);
      if (it != newest_[r].end() && it->second >= win.seq) continue;
      // Replica r lags the winner for this key: anti-entropy repair by
      // re-appending the donor's copy (re-verified from disk; the donor
      // segment may since have been quarantined, which only renamed it).
      const SegmentState& donor_seg = segments_[win.replica][win.segment];
      const auto donor = read_frame(donor_seg.path, win.offset);
      if (!donor.has_value() || donor->key != key || donor->seq != win.seq) {
        obs::FlightRecorder::global().note_fault(
            "scrub_donor_lost",
            "donor frame unreadable in " + donor_seg.path,
            /*sim_time=*/-1, /*machine=*/-1, /*request_dump=*/false);
        continue;
      }
      SegmentLog& log = tier_.log(r);
      if (log.failed()) continue;  // degraded; the next pass retries
      if (!log.append(donor->type, donor->seq, donor->key, donor->payload)) {
        continue;
      }
      ++slice.corruptions_detected;
      ++slice.repairs;
      slice.repair_bytes_written += frame_bytes(*donor);
      instruments().corruptions_detected.add();
      instruments().repairs.add();
      obs::FlightRecorder::global().note_fault(
          "scrub_divergence",
          "replica " + std::to_string(r) + " healed for key " +
              std::to_string(key) + " to seq " + std::to_string(win.seq),
          /*sim_time=*/-1, /*machine=*/-1, /*request_dump=*/false);
    }
  }
  for (std::size_t r = 0; r < tier_.replicas(); ++r) {
    if (!tier_.log(r).failed()) tier_.log(r).flush();
  }
  ++slice.full_passes;
}

ScrubStats IntegrityScrubber::scrub_slice(std::uint64_t record_budget) {
  ScrubStats slice;
  if (record_budget == 0) return slice;
  if (pass_active_ && tier_.mutation_epoch() != pass_epoch_) {
    abandon_pass();
    ++slice.passes_abandoned;
  }
  if (!pass_active_) begin_pass();
  std::uint64_t budget = record_budget;
  while (pass_active_ && budget > 0) {
    while (replica_i_ < segments_.size() &&
           segment_i_ >= segments_[replica_i_].size()) {
      ++replica_i_;
      segment_i_ = 0;
      offset_ = 0;
    }
    if (replica_i_ >= segments_.size()) {
      cross_check(slice);
      pass_active_ = false;
      break;
    }
    if (scan_segment_slice(slice, budget)) finish_segment(slice);
  }
  if (slice.records_verified > 0) {
    instruments().records_verified.add(slice.records_verified);
  }
  obs::WorkLedger::global().note_scrub(
      slice.records_verified, slice.corruptions_detected, slice.repairs,
      slice.quarantines);
  // full_passes from the abandoned-pass bump above is already in slice.
  ScrubStats lifetime_delta = slice;
  lifetime_delta.passes_abandoned = 0;  // counted in abandon_pass()
  stats_ += lifetime_delta;
  return slice;
}

}  // namespace slider::durability
