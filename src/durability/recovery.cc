#include "durability/recovery.h"

#include <chrono>
#include <filesystem>
#include <system_error>
#include <utility>

#include "observability/stats.h"
#include "observability/trace.h"

namespace slider::durability {

namespace fs = std::filesystem;

std::string replica_dir(const std::string& root, std::size_t index) {
  return (fs::path(root) / ("replica-" + std::to_string(index))).string();
}

std::vector<std::string> list_replica_dirs(const std::string& root) {
  std::vector<std::string> dirs;
  for (std::size_t index = 0;; ++index) {
    const std::string dir = replica_dir(root, index);
    std::error_code ec;
    if (!fs::is_directory(dir, ec)) break;
    dirs.push_back(dir);
  }
  return dirs;
}

std::unordered_map<LogKey, RecoveredEntry> recover_replicas(
    const std::vector<std::string>& replica_dirs, RecoveryStats* stats) {
  SLIDER_TRACE_SPAN("durability", "durability.recover");
  const auto start = std::chrono::steady_clock::now();

  struct Winner {
    std::uint64_t seq = 0;
    bool is_put = false;
    bool seen = false;
    std::string payload;
  };
  std::unordered_map<LogKey, Winner> merged;
  RecoveryStats local;

  for (const auto& dir : replica_dirs) {
    ++local.replicas_scanned;
    local.scan += SegmentLog::scan_dir(
        dir,
        [&](const LogRecord& record) {
          Winner& winner = merged[record.key];
          if (winner.seen && record.seq <= winner.seq) {
            ++local.duplicate_records;
            return;
          }
          if (winner.seen) ++local.duplicate_records;
          winner.seen = true;
          winner.seq = record.seq;
          winner.is_put = record.type == LogRecordType::kPut;
          winner.payload = record.payload;
        },
        /*repair_torn_tail=*/true);
  }

  std::unordered_map<LogKey, RecoveredEntry> recovered;
  recovered.reserve(merged.size());
  for (auto& [key, winner] : merged) {
    if (!winner.is_put) {
      ++local.tombstoned_keys;
      continue;
    }
    recovered.emplace(
        key, RecoveredEntry{winner.seq, std::move(winner.payload)});
  }
  local.entries_recovered = recovered.size();
  local.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  auto& reg = obs::StatsRegistry::global();
  reg.counter("durability.recoveries").add();
  reg.counter("durability.recovered_entries").add(local.entries_recovered);
  reg.gauge("durability.recovery_seconds").set(local.wall_seconds);
  SLIDER_TRACE_EVENT("durability", "durability.recover.done");

  if (stats != nullptr) *stats = std::move(local);
  return recovered;
}

}  // namespace slider::durability
