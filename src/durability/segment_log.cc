#include "durability/segment_log.h"

#include <unistd.h>

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <map>
#include <system_error>

#include "common/crc32c.h"
#include "common/logging.h"
#include "data/serde.h"
#include "observability/stats.h"

namespace slider::durability {
namespace {

namespace fs = std::filesystem;

// Wire-format constants live in segment_log.h (shared with the scrubber);
// local aliases keep the scan code readable.
constexpr std::size_t kHeaderBytes = kLogHeaderBytes;
constexpr std::size_t kBodyFixedBytes = kLogBodyFixedBytes;
constexpr std::uint32_t kMaxPlausibleBody = kLogMaxPlausibleBody;

struct DurabilityInstruments {
  obs::Counter& records_appended;
  obs::Counter& bytes_appended;
  obs::Counter& bytes_flushed;
  obs::Counter& fsyncs;
  obs::Counter& segments_rotated;
  obs::Counter& segments_compacted;
  obs::Counter& compaction_bytes_reclaimed;
  obs::Counter& torn_records;
  obs::Counter& crc_failures;
};

DurabilityInstruments& instruments() {
  auto& reg = obs::StatsRegistry::global();
  static DurabilityInstruments inst{
      reg.counter("durability.records_appended"),
      reg.counter("durability.bytes_appended"),
      reg.counter("durability.bytes_flushed"),
      reg.counter("durability.fsyncs"),
      reg.counter("durability.segments_rotated"),
      reg.counter("durability.segments_compacted"),
      reg.counter("durability.compaction_bytes_reclaimed"),
      reg.counter("durability.torn_records"),
      reg.counter("durability.crc_failures"),
  };
  return inst;
}

std::string segment_name(std::uint64_t index) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "seg-%06" PRIu64 ".slog", index);
  return buf;
}

// seg-000042.slog -> 42; nullopt for anything else.
std::optional<std::uint64_t> segment_index(const std::string& filename) {
  constexpr std::string_view kPrefix = "seg-";
  constexpr std::string_view kSuffix = ".slog";
  if (filename.size() <= kPrefix.size() + kSuffix.size()) return std::nullopt;
  if (filename.compare(0, kPrefix.size(), kPrefix) != 0) return std::nullopt;
  if (filename.compare(filename.size() - kSuffix.size(), kSuffix.size(),
                       kSuffix) != 0) {
    return std::nullopt;
  }
  std::uint64_t index = 0;
  bool any = false;
  for (std::size_t i = kPrefix.size(); i < filename.size() - kSuffix.size();
       ++i) {
    const char c = filename[i];
    if (c < '0' || c > '9') return std::nullopt;
    index = index * 10 + static_cast<std::uint64_t>(c - '0');
    any = true;
  }
  if (!any) return std::nullopt;
  return index;
}

std::string encode_record(LogRecordType type, std::uint64_t seq, LogKey key,
                          std::string_view payload) {
  std::string body;
  body.reserve(kBodyFixedBytes + payload.size());
  wire::put_u8(body, static_cast<std::uint8_t>(type));
  wire::put_u64(body, seq);
  wire::put_u64(body, key);
  body.append(payload);

  std::string frame;
  frame.reserve(kHeaderBytes + body.size());
  wire::put_u32(frame, static_cast<std::uint32_t>(body.size()));
  wire::put_u32(frame, crc32c(body));
  frame.append(body);
  return frame;
}

// Scans one segment file. Returns the number of bytes the file should be
// truncated to if a torn tail was found and `repair` is set (nullopt when
// no truncation is needed).
std::optional<std::uint64_t> scan_segment(const std::string& path,
                                          const SegmentLog::ScanCallback& cb,
                                          LogScanStats& stats) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return std::nullopt;
  ++stats.segments_scanned;

  std::optional<std::uint64_t> truncate_to;
  std::uint64_t offset = 0;
  std::string buf;
  for (;;) {
    char header[kHeaderBytes];
    const std::size_t got = std::fread(header, 1, sizeof(header), f);
    if (got == 0) break;  // clean end of segment
    if (got < sizeof(header)) {
      // Incomplete header: the shape a crash mid-write leaves behind.
      ++stats.torn_records;
      truncate_to = offset;
      break;
    }
    std::string_view hv(header, sizeof(header));
    std::uint32_t body_len = 0;
    std::uint32_t expect_crc = 0;
    wire::get_u32(hv, &body_len);
    wire::get_u32(hv, &expect_crc);
    if (body_len < kBodyFixedBytes || body_len > kMaxPlausibleBody) {
      // Garbage length — can't resync safely; give up on this segment.
      ++stats.crc_failures;
      break;
    }
    buf.resize(body_len);
    const std::size_t body_got = std::fread(buf.data(), 1, body_len, f);
    if (body_got < body_len) {
      ++stats.torn_records;
      truncate_to = offset;
      break;
    }
    offset += kHeaderBytes + body_len;
    if (crc32c(buf) != expect_crc) {
      // Mid-file corruption: skip this frame and resync at the next one
      // (the length was plausible, so the frame boundary is our best bet).
      ++stats.crc_failures;
      continue;
    }
    std::string_view body(buf);
    LogRecord record;
    std::uint8_t type = 0;
    wire::get_u8(body, &type);
    wire::get_u64(body, &record.seq);
    wire::get_u64(body, &record.key);
    record.type = static_cast<LogRecordType>(type);
    record.payload.assign(body);
    ++stats.records_scanned;
    stats.bytes_scanned += kHeaderBytes + body_len;
    if (cb) cb(record);
  }
  std::fclose(f);
  return truncate_to;
}

}  // namespace

LogScanStats& LogScanStats::operator+=(const LogScanStats& o) {
  segments_scanned += o.segments_scanned;
  records_scanned += o.records_scanned;
  bytes_scanned += o.bytes_scanned;
  torn_records += o.torn_records;
  crc_failures += o.crc_failures;
  return *this;
}

SegmentLog::SegmentLog(std::string dir, SegmentLogOptions options)
    : dir_(std::move(dir)), options_(std::move(options)) {
  std::error_code ec;
  fs::create_directories(dir_, ec);
  // Continue numbering after any existing (sealed) segments.
  for (const auto& path : list_segments(dir_)) {
    const auto index = segment_index(fs::path(path).filename().string());
    if (index.has_value() && *index >= next_segment_index_) {
      next_segment_index_ = *index + 1;
    }
  }
  open_fresh_segment();
}

SegmentLog::~SegmentLog() { close(); }

void SegmentLog::open_fresh_segment() {
  active_path_ = (fs::path(dir_) / segment_name(next_segment_index_)).string();
  ++next_segment_index_;
  active_ = std::fopen(active_path_.c_str(), "wb");
  if (active_ == nullptr) {
    SLIDER_LOG(Warning) << "segment log: cannot open " << active_path_;
    failed_ = true;
  }
  active_bytes_ = 0;
  unflushed_bytes_ = 0;
  records_since_flush_ = 0;
}

void SegmentLog::rotate() {
  if (active_ != nullptr) {
    std::fflush(active_);
    if (options_.fsync != FsyncPolicy::kNever) {
      instruments().fsyncs.add();
      ::fsync(fileno(active_));
    }
    std::fclose(active_);
    active_ = nullptr;
  }
  ++segments_rotated_;
  instruments().segments_rotated.add();
  open_fresh_segment();
}

bool SegmentLog::write_raw(std::string_view bytes) {
  if (active_ == nullptr) {
    failed_ = true;
    return false;
  }
  std::size_t admitted = bytes.size();
  if (injector_ != nullptr) admitted = injector_->admit(bytes.size());
  if (admitted > 0) {
    const std::size_t written = std::fwrite(bytes.data(), 1, admitted, active_);
    if (written < admitted) admitted = written;
  }
  if (admitted < bytes.size()) {
    // Torn write: flush whatever prefix reached the file (so the on-disk
    // state is exactly what a crash would leave) and fail permanently.
    std::fflush(active_);
    failed_ = true;
    return false;
  }
  active_bytes_ += bytes.size();
  unflushed_bytes_ += bytes.size();
  return true;
}

bool SegmentLog::append(LogRecordType type, std::uint64_t seq, LogKey key,
                        std::string_view payload) {
  if (failed_) return false;
  const std::string frame = encode_record(type, seq, key, payload);
  if (!write_raw(frame)) return false;
  bytes_appended_ += frame.size();
  ++records_appended_;
  instruments().records_appended.add();
  instruments().bytes_appended.add(frame.size());
  ++records_since_flush_;
  if (options_.flush_every_records != 0 &&
      records_since_flush_ >= options_.flush_every_records) {
    flush();
  }
  if (options_.fsync == FsyncPolicy::kEveryAppend) sync();
  if (active_bytes_ >= options_.segment_bytes) rotate();
  return true;
}

void SegmentLog::flush() {
  if (active_ == nullptr) return;
  std::fflush(active_);
  instruments().bytes_flushed.add(unflushed_bytes_);
  unflushed_bytes_ = 0;
  records_since_flush_ = 0;
}

void SegmentLog::sync() {
  if (active_ == nullptr) return;
  flush();
  instruments().fsyncs.add();
  ::fsync(fileno(active_));
}

void SegmentLog::reopen() {
  if (!failed_) return;
  // Abandon the torn active segment (a crash would have left the same
  // prefix; recovery truncates it) and continue in a fresh one.
  if (active_ != nullptr) {
    std::fflush(active_);
    std::fclose(active_);
    active_ = nullptr;
  }
  failed_ = false;
  open_fresh_segment();
}

void SegmentLog::close() {
  if (active_ == nullptr) return;
  flush();
  if (options_.fsync != FsyncPolicy::kNever) {
    instruments().fsyncs.add();
    ::fsync(fileno(active_));
  }
  std::fclose(active_);
  active_ = nullptr;
}

SegmentLog::CompactionResult SegmentLog::compact(
    const std::unordered_set<LogKey>& live) {
  CompactionResult result;
  if (failed_) return result;
  close();

  result.bytes_before = dir_bytes(dir_);

  // Newest record per key across the whole log (append order == age order,
  // ties broken by seq for robustness).
  struct Latest {
    bool seen = false;
    std::uint64_t seq = 0;
    bool is_put = false;
    std::string payload;
  };
  std::map<LogKey, Latest> latest;
  std::uint64_t total_records = 0;
  LogScanStats scan_stats = scan_dir(
      dir_,
      [&](const LogRecord& record) {
        ++total_records;
        Latest& slot = latest[record.key];
        if (slot.seen && record.seq < slot.seq) return;
        slot.seen = true;
        slot.seq = record.seq;
        slot.is_put = record.type == LogRecordType::kPut;
        slot.payload = record.payload;
      },
      /*repair_torn_tail=*/true);
  (void)scan_stats;

  const auto old_segments = list_segments(dir_);

  // Rewrite survivors into fresh segments (indices keep increasing, so the
  // rewritten log sorts after nothing and before future appends).
  open_fresh_segment();
  std::uint64_t kept = 0;
  for (const auto& [key, slot] : latest) {
    if (!slot.is_put || live.find(key) == live.end()) continue;
    const std::string frame =
        encode_record(LogRecordType::kPut, slot.seq, key, slot.payload);
    if (!write_raw(frame)) break;
    ++kept;
    if (active_bytes_ >= options_.segment_bytes) rotate();
  }
  flush();
  if (options_.fsync != FsyncPolicy::kNever) sync();

  if (!failed_) {
    std::error_code ec;
    for (const auto& path : old_segments) fs::remove(path, ec);
  }

  result.bytes_after = dir_bytes(dir_);
  result.records_dropped = total_records - kept;
  instruments().segments_compacted.add(old_segments.size());
  if (result.bytes_before > result.bytes_after) {
    instruments().compaction_bytes_reclaimed.add(result.bytes_before -
                                                 result.bytes_after);
  }
  return result;
}

LogScanStats SegmentLog::scan_dir(const std::string& dir,
                                  const ScanCallback& cb,
                                  bool repair_torn_tail) {
  LogScanStats stats;
  for (const auto& path : list_segments(dir)) {
    const auto truncate_to = scan_segment(path, cb, stats);
    if (truncate_to.has_value() && repair_torn_tail) {
      std::error_code ec;
      fs::resize_file(path, *truncate_to, ec);
      if (ec) {
        SLIDER_LOG(Warning)
            << "segment log: cannot repair torn tail of " << path;
      }
    }
  }
  instruments().torn_records.add(stats.torn_records);
  instruments().crc_failures.add(stats.crc_failures);
  return stats;
}

std::vector<std::string> SegmentLog::list_segments(const std::string& dir) {
  std::vector<std::pair<std::uint64_t, std::string>> indexed;
  std::error_code ec;
  fs::directory_iterator it(dir, ec);
  if (ec) return {};
  for (const auto& entry : it) {
    if (!entry.is_regular_file(ec)) continue;
    const auto index = segment_index(entry.path().filename().string());
    if (!index.has_value()) continue;
    indexed.emplace_back(*index, entry.path().string());
  }
  std::sort(indexed.begin(), indexed.end());
  std::vector<std::string> paths;
  paths.reserve(indexed.size());
  for (auto& [index, path] : indexed) paths.push_back(std::move(path));
  return paths;
}

std::uint64_t SegmentLog::dir_bytes(const std::string& dir) {
  std::uint64_t total = 0;
  for (const auto& path : list_segments(dir)) {
    std::error_code ec;
    const auto size = fs::file_size(path, ec);
    if (!ec) total += static_cast<std::uint64_t>(size);
  }
  return total;
}

}  // namespace slider::durability
