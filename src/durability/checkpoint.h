// Session checkpoint manifests (paper §6: a restarted process resumes
// sliding incrementally instead of recomputing from scratch).
//
// A checkpoint is a single manifest file:
//
//   "SLIDRCKP" [u32 version] [u32 crc32c(blob)] [u64 blob_size] [blob]
//
// where `blob` is session-defined state built from slider::wire
// primitives. Written atomically (tmp file + fsync + rename), so a crash
// mid-checkpoint leaves the previous manifest intact.
//
// The blob mostly stores tree *structure* — node ids — not payloads:
// payloads already live in the durable memo tier, and the reader resolves
// them from the recovered store. Node references use a 1-byte marker:
//
//   [u64 id][u8 marker]
//     marker 0: null node (no table)
//     marker 1: by-ref — resolve the table from the recovered memo store
//               (or from an earlier inline entry of the same checkpoint)
//     marker 2: inline — [u32 len][serialize_table bytes] follows; used
//               for tables the store does not hold durably (id 0, or
//               entries that were never persisted / already GC'd)
//
// The reader caches resolved tables per id, so nodes that shared one
// KVTable before the checkpoint share one again after restore.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "data/record.h"

namespace slider::durability {

inline constexpr std::uint32_t kCheckpointVersion = 1;

class CheckpointWriter {
 public:
  // `persisted(id)` answers whether the durable tier holds `id`, i.e.
  // whether a by-ref marker will be resolvable after recovery. With no
  // callback every table is inlined.
  using PersistedFn = std::function<bool(std::uint64_t)>;

  explicit CheckpointWriter(PersistedFn persisted = {})
      : persisted_(std::move(persisted)) {}

  // Append session state here with slider::wire::put_*.
  std::string& blob() { return blob_; }

  // Appends one node reference per the marker scheme above. A null table
  // always encodes as marker 0, whatever the id says.
  void put_node(std::uint64_t id, const KVTable* table);

  // Atomically writes the manifest: <path>.tmp + fsync + rename. False on
  // any I/O failure (the previous manifest, if any, is left untouched).
  bool write_manifest(const std::string& path) const;

 private:
  PersistedFn persisted_;
  std::string blob_;
  std::unordered_set<std::uint64_t> inlined_;  // ids already written inline
};

class CheckpointReader {
 public:
  // Resolves a by-ref node id to its table (typically a MemoStore peek
  // after recovery). Returning null fails the read.
  using ResolveFn =
      std::function<std::shared_ptr<const KVTable>(std::uint64_t)>;

  // Loads and validates `path` (magic, version, size, CRC). Null on a
  // missing, truncated, or corrupt manifest.
  static std::unique_ptr<CheckpointReader> open(const std::string& path,
                                                ResolveFn resolve);

  CheckpointReader(const CheckpointReader&) = delete;
  CheckpointReader& operator=(const CheckpointReader&) = delete;

  // Cursor reads over the blob; false on exhaustion/malformed data.
  bool get_u8(std::uint8_t* v);
  bool get_u32(std::uint32_t* v);
  bool get_u64(std::uint64_t* v);
  bool get_bytes(std::string* out);

  // Counterpart of CheckpointWriter::put_node. False when the blob is
  // malformed, an inline table fails to deserialize, or a by-ref id
  // cannot be resolved.
  bool get_node(std::uint64_t* id, std::shared_ptr<const KVTable>* table);

  // True once the whole blob has been consumed.
  bool done() const { return pos_ == blob_.size(); }

 private:
  CheckpointReader(std::string blob, ResolveFn resolve)
      : blob_(std::move(blob)), resolve_(std::move(resolve)) {}

  std::string_view rest() const {
    return std::string_view(blob_).substr(pos_);
  }
  void advance_to(std::string_view remaining) {
    pos_ = blob_.size() - remaining.size();
  }

  std::string blob_;
  std::size_t pos_ = 0;
  ResolveFn resolve_;
  // Tables already materialized this restore, keyed by node id — preserves
  // pointer sharing across by-ref and repeated inline references.
  std::unordered_map<std::uint64_t, std::shared_ptr<const KVTable>> cache_;
};

}  // namespace slider::durability
