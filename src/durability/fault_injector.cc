#include "durability/fault_injector.h"

#include <cstdio>
#include <filesystem>
#include <system_error>

namespace slider::durability {

std::size_t FileFaultInjector::admit(std::size_t want) {
  if (!limited_) return want;
  const std::uint64_t admitted =
      budget_ < want ? budget_ : static_cast<std::uint64_t>(want);
  budget_ -= admitted;
  if (admitted < want) tripped_ = true;
  return static_cast<std::size_t>(admitted);
}

std::optional<std::uint64_t> FileFaultInjector::file_size(
    const std::string& path) {
  std::error_code ec;
  const auto size = std::filesystem::file_size(path, ec);
  if (ec) return std::nullopt;
  return static_cast<std::uint64_t>(size);
}

bool FileFaultInjector::truncate_tail(const std::string& path,
                                      std::uint64_t drop_bytes) {
  const auto size = file_size(path);
  if (!size.has_value()) return false;
  const std::uint64_t keep = drop_bytes >= *size ? 0 : *size - drop_bytes;
  std::error_code ec;
  std::filesystem::resize_file(path, keep, ec);
  return !ec;
}

bool FileFaultInjector::flip_bit(const std::string& path,
                                 std::uint64_t byte_offset, int bit) {
  if (bit < 0 || bit > 7) return false;
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  if (f == nullptr) return false;
  bool ok = false;
  if (std::fseek(f, static_cast<long>(byte_offset), SEEK_SET) == 0) {
    const int c = std::fgetc(f);
    if (c != EOF &&
        std::fseek(f, static_cast<long>(byte_offset), SEEK_SET) == 0) {
      const int flipped = c ^ (1 << bit);
      ok = std::fputc(flipped, f) != EOF;
    }
  }
  std::fclose(f);
  return ok;
}

}  // namespace slider::durability
