// Fault injection for the durability layer (tests + crash-recovery smoke).
//
// Two flavours:
//   * a write-path hook (FaultInjector::admit) consulted by SegmentLog
//     before every low-level file write — returning fewer bytes than asked
//     simulates the process dying mid-write, which is exactly how torn
//     tail records appear in real logs;
//   * post-hoc corruption helpers (truncate_tail, flip_bit) that mutate
//     closed segment files directly, simulating disk corruption that the
//     tail-scan recovery must detect via CRC and skip.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>

namespace slider::durability {

// Injection point used by SegmentLog's writer: before writing `want`
// bytes, the log asks how many may actually reach the file. A return
// value < want makes the log write exactly that prefix (a torn record),
// mark itself failed, and refuse all further appends — the closest a
// single process gets to being SIGKILLed mid-fwrite.
class FaultInjector {
 public:
  virtual ~FaultInjector() = default;
  virtual std::size_t admit(std::size_t want) = 0;
};

// File-level fault injector used by the durability tests: a
// fail-after-N-bytes write budget plus static corruption helpers.
class FileFaultInjector final : public FaultInjector {
 public:
  // Admits `budget` more bytes, then fails every write (torn from the
  // first byte past the budget). Unlimited until called.
  void fail_after_bytes(std::uint64_t budget) {
    limited_ = true;
    budget_ = budget;
  }

  std::size_t admit(std::size_t want) override;

  // True once a write has been cut short.
  bool tripped() const { return tripped_; }

  // --- post-hoc corruption (operate directly on files) -----------------

  static std::optional<std::uint64_t> file_size(const std::string& path);
  // Drops the last `drop_bytes` bytes of `path` (a torn tail). Dropping
  // more than the file holds truncates to empty. Returns false on I/O
  // error or missing file.
  static bool truncate_tail(const std::string& path, std::uint64_t drop_bytes);
  // Flips bit `bit` (0..7) of the byte at `byte_offset` in place.
  static bool flip_bit(const std::string& path, std::uint64_t byte_offset,
                       int bit);

 private:
  bool limited_ = false;
  bool tripped_ = false;
  std::uint64_t budget_ = 0;
};

}  // namespace slider::durability
