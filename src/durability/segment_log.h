// Log-structured segment store (paper §6, made real).
//
// An append-only log of length-prefixed, CRC32C-checksummed records,
// split across rotating segment files:
//
//   <dir>/seg-000001.slog, seg-000002.slog, ...
//
// Record wire format (little-endian, built on slider::wire):
//
//   [u32 body_len][u32 crc32c(body)][body]
//   body = [u8 type][u64 seq][u64 key][payload (body_len - 17 bytes)]
//
// The writer rotates to a fresh segment once the active one exceeds
// `segment_bytes`, flushes on a configurable record cadence, and fsyncs
// per policy. Every process (re)start opens a fresh segment — sealed
// segments are immutable, which is what makes tail-scan recovery and
// compaction simple.
//
// Recovery contract (see recovery.h for the replica-merging layer):
//   * a torn record at the tail (incomplete header or body — the shape a
//     crash mid-write leaves behind) is truncated away and counted;
//   * a checksum-mismatched record mid-file is skipped and counted; the
//     scan resyncs at the next frame using the (untrusted) length, and
//     gives up on the segment if the length is implausible;
//   * everything else is surfaced to the callback in append order.
//
// Compaction rewrites the log keeping only the newest record of each key
// in a caller-provided live set — the GC hook: MemoStore::retain_only
// already computes exactly that set.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_set>
#include <vector>

#include "durability/fault_injector.h"

namespace slider::durability {

using LogKey = std::uint64_t;

// Record wire-format constants, shared with the at-rest re-verifier in
// durability/scrubber.cc (which walks sealed segments frame by frame
// without opening them for append).
inline constexpr std::size_t kLogHeaderBytes = 8;      // u32 len + u32 crc
inline constexpr std::size_t kLogBodyFixedBytes = 17;  // u8 type+u64 seq+u64 key
// A body longer than this is taken as framing garbage rather than a real
// record: resyncing past it would mean trusting a corrupt length to jump
// anywhere in the file, so scans abandon the segment instead.
inline constexpr std::uint32_t kLogMaxPlausibleBody = 1u << 30;

enum class FsyncPolicy : std::uint8_t {
  kNever,        // rely on the OS page cache (tests, benches)
  kOnRotate,     // fsync each segment as it seals + on close
  kEveryAppend,  // fsync after every record (durable but slow)
};

struct SegmentLogOptions {
  std::uint64_t segment_bytes = 1ull << 20;  // rotate threshold
  // fflush() after this many records; 0 = only on rotate/sync/close.
  std::size_t flush_every_records = 1;
  FsyncPolicy fsync = FsyncPolicy::kNever;
};

enum class LogRecordType : std::uint8_t {
  kPut = 1,
  kTombstone = 2,  // key erased (explicit erase / budget eviction)
};

struct LogRecord {
  LogRecordType type = LogRecordType::kPut;
  std::uint64_t seq = 0;  // writer-assigned, monotone across segments
  LogKey key = 0;
  std::string payload;  // empty for tombstones
};

struct LogScanStats {
  std::uint64_t segments_scanned = 0;
  std::uint64_t records_scanned = 0;  // intact records delivered
  std::uint64_t bytes_scanned = 0;
  std::uint64_t torn_records = 0;   // incomplete tails dropped
  std::uint64_t crc_failures = 0;   // checksum mismatches skipped

  LogScanStats& operator+=(const LogScanStats& o);
};

class SegmentLog {
 public:
  explicit SegmentLog(std::string dir, SegmentLogOptions options = {});
  ~SegmentLog();

  SegmentLog(const SegmentLog&) = delete;
  SegmentLog& operator=(const SegmentLog&) = delete;

  // Appends one record. Returns false — and permanently marks the log
  // failed — when the fault injector cut the write short (torn record on
  // disk) or the underlying file write failed.
  bool append(LogRecordType type, std::uint64_t seq, LogKey key,
              std::string_view payload);

  // fflush() the active segment (counts durability.bytes_flushed).
  void flush();
  // flush + fsync the active segment (counts durability.fsyncs).
  void sync();
  void close();

  bool failed() const { return failed_; }

  // Clears the failed flag and resumes appending in a fresh segment (the
  // torn segment stays behind; tail-scan recovery already tolerates it).
  // This is the degraded-mode recovery hook: a transient write error (disk
  // full, injected fault) marks the log failed, and once the condition
  // clears the owner reopens instead of discarding the log forever. No-op
  // on a healthy log.
  void reopen();

  // Injects write faults on the *next* low-level writes. Not owned.
  void set_fault_injector(FaultInjector* injector) { injector_ = injector; }

  const std::string& dir() const { return dir_; }
  // Path of the segment currently open for append. The scrubber must not
  // quarantine (rename) this file under the writer; it seals it first.
  const std::string& active_path() const { return active_path_; }
  // Seals the active segment and continues in a fresh one (the scrubber's
  // pre-quarantine hook). No-op on a failed log.
  void rotate_now() {
    if (!failed_) rotate();
  }
  std::uint64_t bytes_appended() const { return bytes_appended_; }
  std::uint64_t records_appended() const { return records_appended_; }
  std::uint64_t segments_rotated() const { return segments_rotated_; }

  struct CompactionResult {
    std::uint64_t bytes_before = 0;
    std::uint64_t bytes_after = 0;
    std::uint64_t records_dropped = 0;  // dead/stale records rewritten away
  };

  // Rewrites the whole log, keeping only the newest put of every key in
  // `live`. Sealed and active segments are replaced; appends continue in
  // a fresh segment afterwards. No-op on a failed log.
  CompactionResult compact(const std::unordered_set<LogKey>& live);

  // --- static scan interface (usable without opening for append) ------

  using ScanCallback = std::function<void(const LogRecord&)>;

  // Scans every segment in `dir` oldest-first, invoking `cb` for each
  // intact record. With `repair_torn_tail`, an incomplete trailing record
  // is physically truncated away so a reopened writer never follows
  // garbage.
  static LogScanStats scan_dir(const std::string& dir, const ScanCallback& cb,
                               bool repair_torn_tail);

  // Segment files in `dir`, sorted oldest-first. Empty if no directory.
  static std::vector<std::string> list_segments(const std::string& dir);

  // Total size of all segment files in `dir`.
  static std::uint64_t dir_bytes(const std::string& dir);

 private:
  void open_fresh_segment();
  void rotate();
  // Low-level write honoring the fault injector; updates failed_.
  bool write_raw(std::string_view bytes);

  std::string dir_;
  SegmentLogOptions options_;
  std::FILE* active_ = nullptr;
  std::string active_path_;
  std::uint64_t next_segment_index_ = 1;
  std::uint64_t active_bytes_ = 0;
  std::uint64_t unflushed_bytes_ = 0;
  std::size_t records_since_flush_ = 0;
  std::uint64_t bytes_appended_ = 0;
  std::uint64_t records_appended_ = 0;
  std::uint64_t segments_rotated_ = 0;
  bool failed_ = false;
  FaultInjector* injector_ = nullptr;
};

}  // namespace slider::durability
