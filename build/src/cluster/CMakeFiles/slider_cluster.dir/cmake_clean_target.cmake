file(REMOVE_RECURSE
  "libslider_cluster.a"
)
