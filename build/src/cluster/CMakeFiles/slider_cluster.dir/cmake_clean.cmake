file(REMOVE_RECURSE
  "CMakeFiles/slider_cluster.dir/cluster.cc.o"
  "CMakeFiles/slider_cluster.dir/cluster.cc.o.d"
  "CMakeFiles/slider_cluster.dir/simulator.cc.o"
  "CMakeFiles/slider_cluster.dir/simulator.cc.o.d"
  "libslider_cluster.a"
  "libslider_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slider_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
