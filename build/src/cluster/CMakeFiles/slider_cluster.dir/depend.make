# Empty dependencies file for slider_cluster.
# This may be replaced when dependencies are built.
