file(REMOVE_RECURSE
  "CMakeFiles/slider_storage.dir/input_store.cc.o"
  "CMakeFiles/slider_storage.dir/input_store.cc.o.d"
  "CMakeFiles/slider_storage.dir/memo_store.cc.o"
  "CMakeFiles/slider_storage.dir/memo_store.cc.o.d"
  "libslider_storage.a"
  "libslider_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slider_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
