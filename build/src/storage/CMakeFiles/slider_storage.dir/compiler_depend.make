# Empty compiler generated dependencies file for slider_storage.
# This may be replaced when dependencies are built.
