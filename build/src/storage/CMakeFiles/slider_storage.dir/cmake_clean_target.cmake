file(REMOVE_RECURSE
  "libslider_storage.a"
)
