# Empty compiler generated dependencies file for slider_mapreduce.
# This may be replaced when dependencies are built.
