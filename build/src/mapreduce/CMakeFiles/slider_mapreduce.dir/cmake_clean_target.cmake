file(REMOVE_RECURSE
  "libslider_mapreduce.a"
)
