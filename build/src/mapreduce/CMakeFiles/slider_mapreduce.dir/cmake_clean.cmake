file(REMOVE_RECURSE
  "CMakeFiles/slider_mapreduce.dir/engine.cc.o"
  "CMakeFiles/slider_mapreduce.dir/engine.cc.o.d"
  "CMakeFiles/slider_mapreduce.dir/map_runner.cc.o"
  "CMakeFiles/slider_mapreduce.dir/map_runner.cc.o.d"
  "CMakeFiles/slider_mapreduce.dir/reduce_runner.cc.o"
  "CMakeFiles/slider_mapreduce.dir/reduce_runner.cc.o.d"
  "libslider_mapreduce.a"
  "libslider_mapreduce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slider_mapreduce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
