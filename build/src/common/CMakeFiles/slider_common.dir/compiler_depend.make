# Empty compiler generated dependencies file for slider_common.
# This may be replaced when dependencies are built.
