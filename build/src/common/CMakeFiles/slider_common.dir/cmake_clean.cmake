file(REMOVE_RECURSE
  "CMakeFiles/slider_common.dir/logging.cc.o"
  "CMakeFiles/slider_common.dir/logging.cc.o.d"
  "CMakeFiles/slider_common.dir/metrics.cc.o"
  "CMakeFiles/slider_common.dir/metrics.cc.o.d"
  "CMakeFiles/slider_common.dir/string_util.cc.o"
  "CMakeFiles/slider_common.dir/string_util.cc.o.d"
  "libslider_common.a"
  "libslider_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slider_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
