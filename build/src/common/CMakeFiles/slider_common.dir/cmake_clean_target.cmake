file(REMOVE_RECURSE
  "libslider_common.a"
)
