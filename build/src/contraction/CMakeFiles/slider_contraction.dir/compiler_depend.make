# Empty compiler generated dependencies file for slider_contraction.
# This may be replaced when dependencies are built.
