file(REMOVE_RECURSE
  "CMakeFiles/slider_contraction.dir/coalescing_tree.cc.o"
  "CMakeFiles/slider_contraction.dir/coalescing_tree.cc.o.d"
  "CMakeFiles/slider_contraction.dir/factory.cc.o"
  "CMakeFiles/slider_contraction.dir/factory.cc.o.d"
  "CMakeFiles/slider_contraction.dir/folding_tree.cc.o"
  "CMakeFiles/slider_contraction.dir/folding_tree.cc.o.d"
  "CMakeFiles/slider_contraction.dir/randomized_tree.cc.o"
  "CMakeFiles/slider_contraction.dir/randomized_tree.cc.o.d"
  "CMakeFiles/slider_contraction.dir/rotating_tree.cc.o"
  "CMakeFiles/slider_contraction.dir/rotating_tree.cc.o.d"
  "CMakeFiles/slider_contraction.dir/strawman_tree.cc.o"
  "CMakeFiles/slider_contraction.dir/strawman_tree.cc.o.d"
  "CMakeFiles/slider_contraction.dir/tree_common.cc.o"
  "CMakeFiles/slider_contraction.dir/tree_common.cc.o.d"
  "libslider_contraction.a"
  "libslider_contraction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slider_contraction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
