file(REMOVE_RECURSE
  "libslider_contraction.a"
)
