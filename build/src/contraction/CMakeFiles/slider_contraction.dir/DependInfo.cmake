
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/contraction/coalescing_tree.cc" "src/contraction/CMakeFiles/slider_contraction.dir/coalescing_tree.cc.o" "gcc" "src/contraction/CMakeFiles/slider_contraction.dir/coalescing_tree.cc.o.d"
  "/root/repo/src/contraction/factory.cc" "src/contraction/CMakeFiles/slider_contraction.dir/factory.cc.o" "gcc" "src/contraction/CMakeFiles/slider_contraction.dir/factory.cc.o.d"
  "/root/repo/src/contraction/folding_tree.cc" "src/contraction/CMakeFiles/slider_contraction.dir/folding_tree.cc.o" "gcc" "src/contraction/CMakeFiles/slider_contraction.dir/folding_tree.cc.o.d"
  "/root/repo/src/contraction/randomized_tree.cc" "src/contraction/CMakeFiles/slider_contraction.dir/randomized_tree.cc.o" "gcc" "src/contraction/CMakeFiles/slider_contraction.dir/randomized_tree.cc.o.d"
  "/root/repo/src/contraction/rotating_tree.cc" "src/contraction/CMakeFiles/slider_contraction.dir/rotating_tree.cc.o" "gcc" "src/contraction/CMakeFiles/slider_contraction.dir/rotating_tree.cc.o.d"
  "/root/repo/src/contraction/strawman_tree.cc" "src/contraction/CMakeFiles/slider_contraction.dir/strawman_tree.cc.o" "gcc" "src/contraction/CMakeFiles/slider_contraction.dir/strawman_tree.cc.o.d"
  "/root/repo/src/contraction/tree_common.cc" "src/contraction/CMakeFiles/slider_contraction.dir/tree_common.cc.o" "gcc" "src/contraction/CMakeFiles/slider_contraction.dir/tree_common.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/slider_common.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/slider_data.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/slider_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/slider_cluster.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
