file(REMOVE_RECURSE
  "libslider_query.a"
)
