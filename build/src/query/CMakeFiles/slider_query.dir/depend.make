# Empty dependencies file for slider_query.
# This may be replaced when dependencies are built.
