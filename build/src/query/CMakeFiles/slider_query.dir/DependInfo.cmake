
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/query/operators.cc" "src/query/CMakeFiles/slider_query.dir/operators.cc.o" "gcc" "src/query/CMakeFiles/slider_query.dir/operators.cc.o.d"
  "/root/repo/src/query/pig_parser.cc" "src/query/CMakeFiles/slider_query.dir/pig_parser.cc.o" "gcc" "src/query/CMakeFiles/slider_query.dir/pig_parser.cc.o.d"
  "/root/repo/src/query/pigmix.cc" "src/query/CMakeFiles/slider_query.dir/pigmix.cc.o" "gcc" "src/query/CMakeFiles/slider_query.dir/pigmix.cc.o.d"
  "/root/repo/src/query/pipeline.cc" "src/query/CMakeFiles/slider_query.dir/pipeline.cc.o" "gcc" "src/query/CMakeFiles/slider_query.dir/pipeline.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/slider_common.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/slider_data.dir/DependInfo.cmake"
  "/root/repo/build/src/mapreduce/CMakeFiles/slider_mapreduce.dir/DependInfo.cmake"
  "/root/repo/build/src/contraction/CMakeFiles/slider_contraction.dir/DependInfo.cmake"
  "/root/repo/build/src/slider/CMakeFiles/slider_slider.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/slider_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/slider_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/slider_cluster.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
