file(REMOVE_RECURSE
  "CMakeFiles/slider_query.dir/operators.cc.o"
  "CMakeFiles/slider_query.dir/operators.cc.o.d"
  "CMakeFiles/slider_query.dir/pig_parser.cc.o"
  "CMakeFiles/slider_query.dir/pig_parser.cc.o.d"
  "CMakeFiles/slider_query.dir/pigmix.cc.o"
  "CMakeFiles/slider_query.dir/pigmix.cc.o.d"
  "CMakeFiles/slider_query.dir/pipeline.cc.o"
  "CMakeFiles/slider_query.dir/pipeline.cc.o.d"
  "libslider_query.a"
  "libslider_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slider_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
