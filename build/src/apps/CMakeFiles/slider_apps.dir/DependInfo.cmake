
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/codecs.cc" "src/apps/CMakeFiles/slider_apps.dir/codecs.cc.o" "gcc" "src/apps/CMakeFiles/slider_apps.dir/codecs.cc.o.d"
  "/root/repo/src/apps/cooccurrence.cc" "src/apps/CMakeFiles/slider_apps.dir/cooccurrence.cc.o" "gcc" "src/apps/CMakeFiles/slider_apps.dir/cooccurrence.cc.o.d"
  "/root/repo/src/apps/glasnost.cc" "src/apps/CMakeFiles/slider_apps.dir/glasnost.cc.o" "gcc" "src/apps/CMakeFiles/slider_apps.dir/glasnost.cc.o.d"
  "/root/repo/src/apps/histogram.cc" "src/apps/CMakeFiles/slider_apps.dir/histogram.cc.o" "gcc" "src/apps/CMakeFiles/slider_apps.dir/histogram.cc.o.d"
  "/root/repo/src/apps/kmeans.cc" "src/apps/CMakeFiles/slider_apps.dir/kmeans.cc.o" "gcc" "src/apps/CMakeFiles/slider_apps.dir/kmeans.cc.o.d"
  "/root/repo/src/apps/knn.cc" "src/apps/CMakeFiles/slider_apps.dir/knn.cc.o" "gcc" "src/apps/CMakeFiles/slider_apps.dir/knn.cc.o.d"
  "/root/repo/src/apps/microbench.cc" "src/apps/CMakeFiles/slider_apps.dir/microbench.cc.o" "gcc" "src/apps/CMakeFiles/slider_apps.dir/microbench.cc.o.d"
  "/root/repo/src/apps/netsession.cc" "src/apps/CMakeFiles/slider_apps.dir/netsession.cc.o" "gcc" "src/apps/CMakeFiles/slider_apps.dir/netsession.cc.o.d"
  "/root/repo/src/apps/substr.cc" "src/apps/CMakeFiles/slider_apps.dir/substr.cc.o" "gcc" "src/apps/CMakeFiles/slider_apps.dir/substr.cc.o.d"
  "/root/repo/src/apps/twitter.cc" "src/apps/CMakeFiles/slider_apps.dir/twitter.cc.o" "gcc" "src/apps/CMakeFiles/slider_apps.dir/twitter.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/slider_common.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/slider_data.dir/DependInfo.cmake"
  "/root/repo/build/src/mapreduce/CMakeFiles/slider_mapreduce.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/slider_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/slider_cluster.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
