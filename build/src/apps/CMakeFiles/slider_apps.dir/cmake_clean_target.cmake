file(REMOVE_RECURSE
  "libslider_apps.a"
)
