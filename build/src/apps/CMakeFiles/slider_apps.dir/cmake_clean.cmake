file(REMOVE_RECURSE
  "CMakeFiles/slider_apps.dir/codecs.cc.o"
  "CMakeFiles/slider_apps.dir/codecs.cc.o.d"
  "CMakeFiles/slider_apps.dir/cooccurrence.cc.o"
  "CMakeFiles/slider_apps.dir/cooccurrence.cc.o.d"
  "CMakeFiles/slider_apps.dir/glasnost.cc.o"
  "CMakeFiles/slider_apps.dir/glasnost.cc.o.d"
  "CMakeFiles/slider_apps.dir/histogram.cc.o"
  "CMakeFiles/slider_apps.dir/histogram.cc.o.d"
  "CMakeFiles/slider_apps.dir/kmeans.cc.o"
  "CMakeFiles/slider_apps.dir/kmeans.cc.o.d"
  "CMakeFiles/slider_apps.dir/knn.cc.o"
  "CMakeFiles/slider_apps.dir/knn.cc.o.d"
  "CMakeFiles/slider_apps.dir/microbench.cc.o"
  "CMakeFiles/slider_apps.dir/microbench.cc.o.d"
  "CMakeFiles/slider_apps.dir/netsession.cc.o"
  "CMakeFiles/slider_apps.dir/netsession.cc.o.d"
  "CMakeFiles/slider_apps.dir/substr.cc.o"
  "CMakeFiles/slider_apps.dir/substr.cc.o.d"
  "CMakeFiles/slider_apps.dir/twitter.cc.o"
  "CMakeFiles/slider_apps.dir/twitter.cc.o.d"
  "libslider_apps.a"
  "libslider_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slider_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
