# Empty dependencies file for slider_apps.
# This may be replaced when dependencies are built.
