# Empty dependencies file for slider_data.
# This may be replaced when dependencies are built.
