file(REMOVE_RECURSE
  "libslider_data.a"
)
