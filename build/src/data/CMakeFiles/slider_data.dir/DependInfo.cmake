
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/record.cc" "src/data/CMakeFiles/slider_data.dir/record.cc.o" "gcc" "src/data/CMakeFiles/slider_data.dir/record.cc.o.d"
  "/root/repo/src/data/serde.cc" "src/data/CMakeFiles/slider_data.dir/serde.cc.o" "gcc" "src/data/CMakeFiles/slider_data.dir/serde.cc.o.d"
  "/root/repo/src/data/split.cc" "src/data/CMakeFiles/slider_data.dir/split.cc.o" "gcc" "src/data/CMakeFiles/slider_data.dir/split.cc.o.d"
  "/root/repo/src/data/text_gen.cc" "src/data/CMakeFiles/slider_data.dir/text_gen.cc.o" "gcc" "src/data/CMakeFiles/slider_data.dir/text_gen.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/slider_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
