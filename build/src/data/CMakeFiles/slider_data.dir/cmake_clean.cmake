file(REMOVE_RECURSE
  "CMakeFiles/slider_data.dir/record.cc.o"
  "CMakeFiles/slider_data.dir/record.cc.o.d"
  "CMakeFiles/slider_data.dir/serde.cc.o"
  "CMakeFiles/slider_data.dir/serde.cc.o.d"
  "CMakeFiles/slider_data.dir/split.cc.o"
  "CMakeFiles/slider_data.dir/split.cc.o.d"
  "CMakeFiles/slider_data.dir/text_gen.cc.o"
  "CMakeFiles/slider_data.dir/text_gen.cc.o.d"
  "libslider_data.a"
  "libslider_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slider_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
