# CMake generated Testfile for 
# Source directory: /root/repo/src/slider
# Build directory: /root/repo/build/src/slider
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
