file(REMOVE_RECURSE
  "CMakeFiles/slider_slider.dir/session.cc.o"
  "CMakeFiles/slider_slider.dir/session.cc.o.d"
  "CMakeFiles/slider_slider.dir/window.cc.o"
  "CMakeFiles/slider_slider.dir/window.cc.o.d"
  "libslider_slider.a"
  "libslider_slider.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slider_slider.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
