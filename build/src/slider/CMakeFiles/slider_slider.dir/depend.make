# Empty dependencies file for slider_slider.
# This may be replaced when dependencies are built.
