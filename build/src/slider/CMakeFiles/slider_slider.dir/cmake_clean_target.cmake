file(REMOVE_RECURSE
  "libslider_slider.a"
)
