
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_apps.cc" "tests/CMakeFiles/slider_tests.dir/test_apps.cc.o" "gcc" "tests/CMakeFiles/slider_tests.dir/test_apps.cc.o.d"
  "/root/repo/tests/test_case_studies.cc" "tests/CMakeFiles/slider_tests.dir/test_case_studies.cc.o" "gcc" "tests/CMakeFiles/slider_tests.dir/test_case_studies.cc.o.d"
  "/root/repo/tests/test_cluster.cc" "tests/CMakeFiles/slider_tests.dir/test_cluster.cc.o" "gcc" "tests/CMakeFiles/slider_tests.dir/test_cluster.cc.o.d"
  "/root/repo/tests/test_common.cc" "tests/CMakeFiles/slider_tests.dir/test_common.cc.o" "gcc" "tests/CMakeFiles/slider_tests.dir/test_common.cc.o.d"
  "/root/repo/tests/test_data.cc" "tests/CMakeFiles/slider_tests.dir/test_data.cc.o" "gcc" "tests/CMakeFiles/slider_tests.dir/test_data.cc.o.d"
  "/root/repo/tests/test_fuzz_and_isolation.cc" "tests/CMakeFiles/slider_tests.dir/test_fuzz_and_isolation.cc.o" "gcc" "tests/CMakeFiles/slider_tests.dir/test_fuzz_and_isolation.cc.o.d"
  "/root/repo/tests/test_invariants.cc" "tests/CMakeFiles/slider_tests.dir/test_invariants.cc.o" "gcc" "tests/CMakeFiles/slider_tests.dir/test_invariants.cc.o.d"
  "/root/repo/tests/test_mapreduce.cc" "tests/CMakeFiles/slider_tests.dir/test_mapreduce.cc.o" "gcc" "tests/CMakeFiles/slider_tests.dir/test_mapreduce.cc.o.d"
  "/root/repo/tests/test_memo_policies.cc" "tests/CMakeFiles/slider_tests.dir/test_memo_policies.cc.o" "gcc" "tests/CMakeFiles/slider_tests.dir/test_memo_policies.cc.o.d"
  "/root/repo/tests/test_operators.cc" "tests/CMakeFiles/slider_tests.dir/test_operators.cc.o" "gcc" "tests/CMakeFiles/slider_tests.dir/test_operators.cc.o.d"
  "/root/repo/tests/test_pig.cc" "tests/CMakeFiles/slider_tests.dir/test_pig.cc.o" "gcc" "tests/CMakeFiles/slider_tests.dir/test_pig.cc.o.d"
  "/root/repo/tests/test_query.cc" "tests/CMakeFiles/slider_tests.dir/test_query.cc.o" "gcc" "tests/CMakeFiles/slider_tests.dir/test_query.cc.o.d"
  "/root/repo/tests/test_schedulers.cc" "tests/CMakeFiles/slider_tests.dir/test_schedulers.cc.o" "gcc" "tests/CMakeFiles/slider_tests.dir/test_schedulers.cc.o.d"
  "/root/repo/tests/test_session.cc" "tests/CMakeFiles/slider_tests.dir/test_session.cc.o" "gcc" "tests/CMakeFiles/slider_tests.dir/test_session.cc.o.d"
  "/root/repo/tests/test_storage.cc" "tests/CMakeFiles/slider_tests.dir/test_storage.cc.o" "gcc" "tests/CMakeFiles/slider_tests.dir/test_storage.cc.o.d"
  "/root/repo/tests/test_trees.cc" "tests/CMakeFiles/slider_tests.dir/test_trees.cc.o" "gcc" "tests/CMakeFiles/slider_tests.dir/test_trees.cc.o.d"
  "/root/repo/tests/test_window_and_misc.cc" "tests/CMakeFiles/slider_tests.dir/test_window_and_misc.cc.o" "gcc" "tests/CMakeFiles/slider_tests.dir/test_window_and_misc.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/query/CMakeFiles/slider_query.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/slider_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/contraction/CMakeFiles/slider_contraction.dir/DependInfo.cmake"
  "/root/repo/build/src/slider/CMakeFiles/slider_slider.dir/DependInfo.cmake"
  "/root/repo/build/src/mapreduce/CMakeFiles/slider_mapreduce.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/slider_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/slider_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/slider_data.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/slider_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
