# Empty compiler generated dependencies file for slider_tests.
# This may be replaced when dependencies are built.
