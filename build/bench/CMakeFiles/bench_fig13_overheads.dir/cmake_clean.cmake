file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_overheads.dir/bench_fig13_overheads.cc.o"
  "CMakeFiles/bench_fig13_overheads.dir/bench_fig13_overheads.cc.o.d"
  "bench_fig13_overheads"
  "bench_fig13_overheads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_overheads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
