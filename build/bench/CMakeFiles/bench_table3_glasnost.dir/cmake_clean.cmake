file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_glasnost.dir/bench_table3_glasnost.cc.o"
  "CMakeFiles/bench_table3_glasnost.dir/bench_table3_glasnost.cc.o.d"
  "bench_table3_glasnost"
  "bench_table3_glasnost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_glasnost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
