# Empty dependencies file for bench_table5_netsession.
# This may be replaced when dependencies are built.
