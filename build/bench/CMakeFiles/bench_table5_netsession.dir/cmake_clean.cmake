file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_netsession.dir/bench_table5_netsession.cc.o"
  "CMakeFiles/bench_table5_netsession.dir/bench_table5_netsession.cc.o.d"
  "bench_table5_netsession"
  "bench_table5_netsession.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_netsession.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
