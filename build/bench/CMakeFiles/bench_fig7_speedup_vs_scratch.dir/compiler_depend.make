# Empty compiler generated dependencies file for bench_fig7_speedup_vs_scratch.
# This may be replaced when dependencies are built.
