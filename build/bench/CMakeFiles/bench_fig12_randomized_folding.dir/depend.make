# Empty dependencies file for bench_fig12_randomized_folding.
# This may be replaced when dependencies are built.
