file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_randomized_folding.dir/bench_fig12_randomized_folding.cc.o"
  "CMakeFiles/bench_fig12_randomized_folding.dir/bench_fig12_randomized_folding.cc.o.d"
  "bench_fig12_randomized_folding"
  "bench_fig12_randomized_folding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_randomized_folding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
