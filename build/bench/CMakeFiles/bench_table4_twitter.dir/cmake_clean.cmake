file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_twitter.dir/bench_table4_twitter.cc.o"
  "CMakeFiles/bench_table4_twitter.dir/bench_table4_twitter.cc.o.d"
  "bench_table4_twitter"
  "bench_table4_twitter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_twitter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
