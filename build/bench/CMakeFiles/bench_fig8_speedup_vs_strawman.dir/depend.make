# Empty dependencies file for bench_fig8_speedup_vs_strawman.
# This may be replaced when dependencies are built.
