file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_speedup_vs_strawman.dir/bench_fig8_speedup_vs_strawman.cc.o"
  "CMakeFiles/bench_fig8_speedup_vs_strawman.dir/bench_fig8_speedup_vs_strawman.cc.o.d"
  "bench_fig8_speedup_vs_strawman"
  "bench_fig8_speedup_vs_strawman.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_speedup_vs_strawman.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
