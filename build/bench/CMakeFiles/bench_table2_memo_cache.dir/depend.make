# Empty dependencies file for bench_table2_memo_cache.
# This may be replaced when dependencies are built.
