file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_memo_cache.dir/bench_table2_memo_cache.cc.o"
  "CMakeFiles/bench_table2_memo_cache.dir/bench_table2_memo_cache.cc.o.d"
  "bench_table2_memo_cache"
  "bench_table2_memo_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_memo_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
