file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_scheduler.dir/bench_table1_scheduler.cc.o"
  "CMakeFiles/bench_table1_scheduler.dir/bench_table1_scheduler.cc.o.d"
  "bench_table1_scheduler"
  "bench_table1_scheduler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_scheduler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
