file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_split_processing.dir/bench_fig11_split_processing.cc.o"
  "CMakeFiles/bench_fig11_split_processing.dir/bench_fig11_split_processing.cc.o.d"
  "bench_fig11_split_processing"
  "bench_fig11_split_processing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_split_processing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
