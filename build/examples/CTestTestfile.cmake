# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_twitter_propagation "/root/repo/build/examples/twitter_propagation")
set_tests_properties(example_twitter_propagation PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_glasnost_monitor "/root/repo/build/examples/glasnost_monitor")
set_tests_properties(example_glasnost_monitor PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_netsession_audit "/root/repo/build/examples/netsession_audit")
set_tests_properties(example_netsession_audit PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_pig_query "/root/repo/build/examples/pig_query")
set_tests_properties(example_pig_query PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_pig_script "/root/repo/build/examples/pig_script")
set_tests_properties(example_pig_script PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_sliderbench "/root/repo/build/examples/sliderbench" "--app=substr" "--mode=variable" "--window=40" "--slide=4" "--slides=2" "--records=30")
set_tests_properties(example_sliderbench PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;24;add_test;/root/repo/examples/CMakeLists.txt;0;")
