file(REMOVE_RECURSE
  "CMakeFiles/twitter_propagation.dir/twitter_propagation.cpp.o"
  "CMakeFiles/twitter_propagation.dir/twitter_propagation.cpp.o.d"
  "twitter_propagation"
  "twitter_propagation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/twitter_propagation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
