# Empty dependencies file for twitter_propagation.
# This may be replaced when dependencies are built.
