# Empty dependencies file for pig_query.
# This may be replaced when dependencies are built.
