file(REMOVE_RECURSE
  "CMakeFiles/pig_query.dir/pig_query.cpp.o"
  "CMakeFiles/pig_query.dir/pig_query.cpp.o.d"
  "pig_query"
  "pig_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pig_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
