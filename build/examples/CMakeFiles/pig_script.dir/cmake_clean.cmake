file(REMOVE_RECURSE
  "CMakeFiles/pig_script.dir/pig_script.cpp.o"
  "CMakeFiles/pig_script.dir/pig_script.cpp.o.d"
  "pig_script"
  "pig_script.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pig_script.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
