# Empty dependencies file for pig_script.
# This may be replaced when dependencies are built.
