# Empty dependencies file for glasnost_monitor.
# This may be replaced when dependencies are built.
