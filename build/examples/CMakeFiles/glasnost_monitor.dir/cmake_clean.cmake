file(REMOVE_RECURSE
  "CMakeFiles/glasnost_monitor.dir/glasnost_monitor.cpp.o"
  "CMakeFiles/glasnost_monitor.dir/glasnost_monitor.cpp.o.d"
  "glasnost_monitor"
  "glasnost_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/glasnost_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
