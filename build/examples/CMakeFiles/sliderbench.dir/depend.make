# Empty dependencies file for sliderbench.
# This may be replaced when dependencies are built.
