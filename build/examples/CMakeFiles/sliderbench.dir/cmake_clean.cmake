file(REMOVE_RECURSE
  "CMakeFiles/sliderbench.dir/sliderbench.cpp.o"
  "CMakeFiles/sliderbench.dir/sliderbench.cpp.o.d"
  "sliderbench"
  "sliderbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sliderbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
