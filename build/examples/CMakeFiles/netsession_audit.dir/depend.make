# Empty dependencies file for netsession_audit.
# This may be replaced when dependencies are built.
