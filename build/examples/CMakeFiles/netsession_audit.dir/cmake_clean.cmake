file(REMOVE_RECURSE
  "CMakeFiles/netsession_audit.dir/netsession_audit.cpp.o"
  "CMakeFiles/netsession_audit.dir/netsession_audit.cpp.o.d"
  "netsession_audit"
  "netsession_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netsession_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
