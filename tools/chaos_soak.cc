// chaos_soak — the repo's fault-tolerance gate (paper §6, made executable).
//
// For every contraction-tree variant and every seed, this tool runs the
// same slide schedule twice:
//
//   * a failure-free control session, and
//   * a chaos session: same inputs, same config, but with a seeded
//     ChaosSchedule applied while it runs — machines crash and recover
//     mid-stage, stragglers slow down, in-memory memo copies vanish, the
//     durable tier rejects writes for whole windows, and a deterministic
//     fraction of task attempts simply fail.
//
// After every run (initial build, each slide, each background phase) the
// chaos session's outputs must be BYTE-IDENTICAL to the control's — the
// paper's claim that failures cost recomputation, never correctness. The
// tool additionally checks:
//
//   * every task finished within the attempt cap (max_task_attempts <=
//     ChaosOptions::max_attempts),
//   * a replayed chaos run (same seed) is bit-identical: same outputs,
//     same chaos counters, same simulated clock — failure handling is a
//     pure function of the seed,
//   * the causal work ledger still conserves: per-cause combiner
//     invocations (now including failure_reexec) sum to the aggregate
//     counter.
//
// --bitrot adds the integrity-scrubbing leg: the chaos schedule also
// flips bits in at-rest segment records and truncates one replica's
// newest record (kBitRot / kReplicaDivergence), every session runs with
// the scrubber armed (SliderConfig::scrub_records_per_slide) and memo
// checksum verification on, and after every run the scrub conservation
// invariant (corruptions_detected == repairs + quarantines) must hold on
// top of the byte-identity checks. The mode finishes with a SIGKILL
// mid-repair experiment: a forked victim corrupts a replica, starts the
// scrub, and dies from inside the repair append; the parent recovers the
// store from the surviving replicas, completes the interrupted repair,
// and proves the recovered session's outputs byte-identical to a
// failure-free control.
//
// Exit status 0 iff every check passed. Writes BENCH_chaos_soak.json
// (RunReport with the robustness section) unless --no-report.
//
// Run:  ./build/tools/chaos_soak --seeds=32
//       ./build/tools/chaos_soak --bitrot   (16 seeds unless --seeds=N)
// CI:   registered as the `tools_chaos_soak` / `tools_chaos_soak_bitrot`
//       ctests.

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <bit>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "apps/microbench.h"
#include "data/serde.h"
#include "durability/durable_tier.h"
#include "durability/fault_injector.h"
#include "durability/recovery.h"
#include "durability/scrubber.h"
#include "durability/segment_log.h"
#include "observability/flight_recorder.h"
#include "observability/run_report.h"
#include "observability/slo.h"
#include "observability/stats.h"
#include "observability/work_ledger.h"
#include "robustness/chaos.h"
#include "slider/session.h"

namespace {

using namespace slider;

struct Options {
  int seeds = 8;
  int slides = 5;
  int machines = 6;
  std::size_t window_splits = 16;
  std::size_t records_per_split = 20;
  std::size_t slide = 4;
  bool quiet = false;
  bool report = true;
  // --bitrot: inject at-rest corruption (bit flips + replica divergence)
  // and arm the integrity scrubber; conservation asserted every run.
  bool bitrot = false;
  std::uint64_t scrub_budget = 48;  // records scrubbed per slide when armed
};

struct Variant {
  const char* name;
  WindowMode mode;
  TreeKind kind;
  bool split_processing;
  // Flat-tier variant: no explicit tree kind (the session routes eligible
  // partitions to the flat aggregator), and the app switches to substr,
  // whose sum combiner is flat-eligible (hct's histogram combiner is not).
  bool flat = false;
};

// All five tree variants, each under its paper-paired window mode. The two
// data-dependent background modes (split processing) ride on the variants
// whose modes support them, so the background stage faces chaos too. The
// flat variant additionally runs a tree-forced twin control: the flat tier
// must be byte-identical to the contraction tree it bypasses, with and
// without chaos.
constexpr Variant kVariants[] = {
    {"strawman", WindowMode::kVariableWidth, TreeKind::kStrawman, false},
    {"folding", WindowMode::kVariableWidth, TreeKind::kFolding, false},
    {"randomized_folding", WindowMode::kVariableWidth,
     TreeKind::kRandomizedFolding, false},
    {"rotating", WindowMode::kFixedWidth, TreeKind::kRotating, true},
    {"coalescing", WindowMode::kAppendOnly, TreeKind::kCoalescing, true},
    {"flat", WindowMode::kVariableWidth, TreeKind::kFolding, false,
     /*flat=*/true},
};

// Deterministic inputs, independent of the chaos seed: batch k is the same
// bytes in the control, every chaos run, and every replay.
std::vector<SplitPtr> batch_for(const apps::MicroBenchmark& bench,
                                const Options& opt, std::size_t count,
                                SplitId first_id) {
  Rng rng(777 + first_id);
  auto records = apps::generate_input(
      bench.app, count * opt.records_per_split, rng, first_id * 1'000'000);
  return make_splits(std::move(records), opt.records_per_split, first_id);
}

// force_tree pins the flat variant onto its fallback contraction tree
// (same combiner, same inputs): the tree-forced twin that the flat tier's
// outputs are diffed against.
SliderConfig variant_config(const Variant& v, const Options& opt,
                            bool force_tree = false) {
  SliderConfig config;
  config.mode = v.mode;
  if (!v.flat || force_tree) config.tree_kind = v.kind;
  config.enable_flat_tier = !force_tree;
  config.split_processing = v.split_processing;
  config.bucket_width = opt.slide;
  return config;
}

// Serialized outputs of one run, one blob per partition.
std::vector<std::string> output_bytes(const SliderSession& session) {
  std::vector<std::string> out;
  out.reserve(session.output().size());
  for (const KVTable& table : session.output()) {
    out.push_back(serialize_table(table));
  }
  return out;
}

struct ControlTrace {
  std::vector<std::vector<std::string>> outputs;  // per run, per partition
  SimDuration final_clock = 0;
};

// Failure-free control: records the byte-exact outputs after every run.
ControlTrace run_control(const Variant& v, const Options& opt,
                         const apps::MicroBenchmark& bench,
                         bool force_tree = false) {
  CostModel cost;
  Cluster cluster(ClusterConfig{.num_machines = opt.machines,
                                .slots_per_machine = 2});
  VanillaEngine engine(cluster, cost);
  MemoStore memo(cluster, cost);
  SliderSession session(engine, memo, bench.job,
                        variant_config(v, opt, force_tree));

  ControlTrace trace;
  session.initial_run(batch_for(bench, opt, opt.window_splits, 0));
  trace.outputs.push_back(output_bytes(session));
  const std::size_t remove =
      v.mode == WindowMode::kAppendOnly ? 0 : opt.slide;
  SplitId next_id = opt.window_splits;
  for (int s = 0; s < opt.slides; ++s) {
    session.slide(remove, batch_for(bench, opt, opt.slide, next_id));
    next_id += opt.slide;
    if (v.split_processing) session.run_background();
    trace.outputs.push_back(output_bytes(session));
  }
  trace.final_clock = session.sim_clock();
  return trace;
}

struct ChaosOutcome {
  bool ok = true;
  std::string failure;  // first mismatch, for the log
  RunMetrics metrics;   // summed over every run
  robustness::ChaosController::Counters chaos;
  durability::ScrubStats scrub;  // lifetime scrub stats (--bitrot only)
  SimDuration final_clock = 0;
  std::vector<std::string> final_outputs;
};

// One chaos run against the recorded control trace.
ChaosOutcome run_chaos(const Variant& v, const Options& opt,
                       const apps::MicroBenchmark& bench,
                       const ControlTrace& control, std::uint64_t seed,
                       const std::filesystem::path& dir) {
  ChaosOutcome outcome;
  CostModel cost;
  Cluster cluster(ClusterConfig{.num_machines = opt.machines,
                                .slots_per_machine = 2});
  VanillaEngine engine(cluster, cost);
  durability::DurableTier tier(dir.string());
  MemoStore memo(cluster, cost);
  memo.attach_durable_tier(&tier);

  robustness::ChaosOptions chaos_options;
  chaos_options.horizon = std::max<SimDuration>(control.final_clock, 1.0);
  chaos_options.crash_events = 2;
  chaos_options.straggler_events = 2;
  chaos_options.memo_loss_events = 2;
  chaos_options.durable_error_events = 1;
  chaos_options.attempt_failure_prob = 0.05;
  chaos_options.min_live_machines = 2;
  if (opt.bitrot) {
    chaos_options.bit_rot_events = 3;
    chaos_options.replica_divergence_events = 2;
  }
  const robustness::ChaosSchedule schedule = robustness::ChaosSchedule::generate(
      seed, chaos_options, opt.machines);
  robustness::ChaosController controller(
      schedule, robustness::ChaosTargets{.cluster = &cluster,
                                         .memo = &memo,
                                         .durable = &tier});

  SliderConfig config = variant_config(v, opt);
  config.fault_provider = &controller;
  if (opt.bitrot) {
    config.scrub_records_per_slide = opt.scrub_budget;
    memo.set_verify_checksums(true);
  }
  SliderSession session(engine, memo, bench.job, config);

  std::size_t run_index = 0;
  const auto check_outputs = [&]() -> bool {
    const std::vector<std::string> got = output_bytes(session);
    if (got != control.outputs[run_index]) {
      outcome.ok = false;
      outcome.failure = "outputs diverged from control at run " +
                        std::to_string(run_index);
      return false;
    }
    ++run_index;
    return true;
  };

  outcome.metrics += session.initial_run(
      batch_for(bench, opt, opt.window_splits, 0));
  if (!check_outputs()) return outcome;
  controller.apply_until(session.sim_clock());

  const std::size_t remove =
      v.mode == WindowMode::kAppendOnly ? 0 : opt.slide;
  SplitId next_id = opt.window_splits;
  for (int s = 0; s < opt.slides; ++s) {
    outcome.metrics +=
        session.slide(remove, batch_for(bench, opt, opt.slide, next_id));
    next_id += opt.slide;
    if (v.split_processing) outcome.metrics += session.run_background();
    if (!check_outputs()) return outcome;
    controller.apply_until(session.sim_clock());
  }

  if (outcome.metrics.max_task_attempts >
      static_cast<std::uint64_t>(chaos_options.max_attempts)) {
    outcome.ok = false;
    outcome.failure = "attempt cap exceeded: max_task_attempts=" +
                      std::to_string(outcome.metrics.max_task_attempts) +
                      " > cap=" + std::to_string(chaos_options.max_attempts);
    return outcome;
  }

  if (opt.bitrot) {
    // Drain the scrubber: finish the in-flight pass, then one complete
    // pass over the final at-rest state, so every injected corruption
    // that survived to the end has been detected and resolved.
    memo.scrub_durable(1ull << 20);
    memo.scrub_durable(1ull << 20);
    outcome.scrub = memo.scrub_stats();
    if (!outcome.scrub.conserved()) {
      outcome.ok = false;
      outcome.failure =
          "scrub conservation violated: detected=" +
          std::to_string(outcome.scrub.corruptions_detected) +
          " != repairs=" + std::to_string(outcome.scrub.repairs) +
          " + quarantines=" + std::to_string(outcome.scrub.quarantines);
      return outcome;
    }
  }

  outcome.chaos = controller.counters();
  outcome.final_clock = session.sim_clock();
  outcome.final_outputs = output_bytes(session);
  return outcome;
}

bool same_counters(const robustness::ChaosController::Counters& a,
                   const robustness::ChaosController::Counters& b) {
  return a.events_applied == b.events_applied && a.crashes == b.crashes &&
         a.recoveries == b.recoveries && a.stragglers == b.stragglers &&
         a.memo_losses == b.memo_losses &&
         a.durable_error_windows == b.durable_error_windows &&
         a.bit_rots == b.bit_rots &&
         a.replica_divergences == b.replica_divergences;
}

// A FaultInjector that SIGKILLs the process once its byte budget runs
// out. Armed on the corrupted replica right before the scrub starts, it
// fires from inside the scrubber's quarantine re-append: the process dies
// mid-repair, leaving a half-written healing segment plus the original
// corrupt frame for the recovery process to sort out.
class KillAfterBytes final : public durability::FaultInjector {
 public:
  explicit KillAfterBytes(std::uint64_t budget) : budget_(budget) {}

  std::size_t admit(std::size_t want) override {
    if (!armed_) return want;
    if (budget_ < want) {
      std::fflush(nullptr);  // everything before this write stays on disk
      std::raise(SIGKILL);
    }
    budget_ -= want;
    return want;
  }

  void arm() { armed_ = true; }

 private:
  bool armed_ = false;
  std::uint64_t budget_;
};

// --phase=bitrot-victim: build durable state, corrupt one replica at
// rest, then start a scrub whose first repair append SIGKILLs the
// process. Exit 2 means the experiment itself failed (the injector never
// fired); death by SIGKILL is the expected outcome.
int run_bitrot_victim(const Options& opt, const std::string& dir) {
  const auto bench = apps::make_microbenchmark(apps::MicroApp::kHct);
  const Variant& v = kVariants[1];  // folding tree, variable-width window
  CostModel cost;
  Cluster cluster(ClusterConfig{.num_machines = opt.machines,
                                .slots_per_machine = 2});
  VanillaEngine engine(cluster, cost);
  durability::DurableTier tier(dir);
  MemoStore memo(cluster, cost);
  memo.attach_durable_tier(&tier);
  SliderSession session(engine, memo, bench.job, variant_config(v, opt));

  session.initial_run(batch_for(bench, opt, opt.window_splits, 0));
  SplitId next_id = opt.window_splits;
  for (int s = 0; s < 2; ++s) {
    session.slide(opt.slide, batch_for(bench, opt, opt.slide, next_id));
    next_id += opt.slide;
  }
  memo.flush_durable();

  // Flip one bit in replica 0's newest segment, away from the start so
  // the scrubber has an intact prefix to re-append during quarantine.
  const std::vector<std::string> segments =
      durability::SegmentLog::list_segments(durability::replica_dir(dir, 0));
  if (segments.empty()) {
    std::fprintf(stderr, "bitrot victim: no segments to corrupt\n");
    return 2;
  }
  const std::string& victim_segment = segments.back();
  const auto size = durability::FileFaultInjector::file_size(victim_segment);
  if (!size.has_value() || *size < 64) {
    std::fprintf(stderr, "bitrot victim: segment too small to corrupt\n");
    return 2;
  }
  durability::FileFaultInjector::flip_bit(victim_segment, *size * 3 / 4, 3);

  // Any repair append on replica 0 now kills the process mid-write.
  KillAfterBytes killer(1);
  tier.set_fault_injector(0, &killer);
  killer.arm();
  memo.scrub_durable(1ull << 20);

  std::fprintf(stderr, "bitrot victim: scrub survived; injector never "
               "fired\n");
  return 2;
}

// SIGKILL mid-repair + recovery: fork the victim above, expect SIGKILL,
// then recover the store in-process — the interrupted repair must finish,
// conservation must hold, and a session over the recovered memo must
// reproduce a failure-free control byte for byte. Returns the number of
// failures (0 on success).
int run_bitrot_crash_scenario(const char* argv0, const Options& opt) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "slider_bitrot_crash")
          .string();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  const pid_t pid = fork();
  if (pid < 0) {
    std::perror("fork");
    return 1;
  }
  if (pid == 0) {
    const std::string dir_flag = "--dir=" + dir;
    execl(argv0, argv0, "--phase=bitrot-victim", dir_flag.c_str(),
          static_cast<char*>(nullptr));
    std::perror("execl");
    _exit(127);
  }
  int status = 0;
  if (waitpid(pid, &status, 0) < 0) {
    std::perror("waitpid");
    return 1;
  }
  if (!WIFSIGNALED(status) || WTERMSIG(status) != SIGKILL) {
    std::fprintf(stderr,
                 "bitrot crash: victim did not die of SIGKILL (status=%d)\n",
                 status);
    std::filesystem::remove_all(dir);
    return 1;
  }

  // Recovery: replica 1 is intact; replica 0 holds the corrupt frame and
  // whatever the half-finished quarantine managed to write before dying.
  const auto bench = apps::make_microbenchmark(apps::MicroApp::kHct);
  const Variant& v = kVariants[1];
  CostModel cost;
  Cluster cluster(ClusterConfig{.num_machines = opt.machines,
                                .slots_per_machine = 2});
  VanillaEngine engine(cluster, cost);
  durability::DurableTier tier(dir);
  MemoStore memo(cluster, cost);
  memo.attach_durable_tier(&tier);
  durability::RecoveryStats recovery;
  const std::size_t recovered = memo.restore_from_durable(&recovery);
  memo.set_verify_checksums(true);

  // Finish the interrupted repair: scrub to at least one complete pass.
  for (int i = 0; i < 10'000 && memo.scrub_stats().full_passes < 1; ++i) {
    memo.scrub_durable(256);
  }
  const durability::ScrubStats scrub = memo.scrub_stats();
  if (scrub.full_passes < 1 || !scrub.conserved()) {
    std::fprintf(stderr,
                 "bitrot crash: post-recovery scrub did not converge "
                 "(passes=%llu detected=%llu repairs=%llu quarantines=%llu)\n",
                 static_cast<unsigned long long>(scrub.full_passes),
                 static_cast<unsigned long long>(scrub.corruptions_detected),
                 static_cast<unsigned long long>(scrub.repairs),
                 static_cast<unsigned long long>(scrub.quarantines));
    std::filesystem::remove_all(dir);
    return 1;
  }

  // A session over the recovered store must match a failure-free control
  // after every run — at-rest corruption plus a mid-repair crash cost
  // recomputation at most, never correctness.
  const ControlTrace control = run_control(v, opt, bench);
  SliderConfig config = variant_config(v, opt);
  config.scrub_records_per_slide = opt.scrub_budget;
  SliderSession session(engine, memo, bench.job, config);
  std::size_t run_index = 0;
  int failures = 0;
  const auto check = [&]() {
    if (output_bytes(session) != control.outputs[run_index]) {
      std::fprintf(stderr,
                   "bitrot crash: recovered outputs diverged at run %zu\n",
                   run_index);
      ++failures;
    }
    ++run_index;
  };
  session.initial_run(batch_for(bench, opt, opt.window_splits, 0));
  check();
  SplitId next_id = opt.window_splits;
  for (int s = 0; s < opt.slides; ++s) {
    session.slide(opt.slide, batch_for(bench, opt, opt.slide, next_id));
    next_id += opt.slide;
    check();
  }
  if (!memo.scrub_stats().conserved()) {
    std::fprintf(stderr, "bitrot crash: scrub conservation violated after "
                 "recovered replay\n");
    ++failures;
  }
  std::filesystem::remove_all(dir);
  if (failures == 0 && !opt.quiet) {
    std::printf("bitrot crash: victim SIGKILLed mid-repair; recovered %zu "
                "entries (torn=%llu crc_failures=%llu), scrub converged "
                "(detected=%llu repairs=%llu quarantines=%llu), outputs "
                "byte-identical\n",
                recovered,
                static_cast<unsigned long long>(recovery.scan.torn_records),
                static_cast<unsigned long long>(recovery.scan.crc_failures),
                static_cast<unsigned long long>(scrub.corruptions_detected),
                static_cast<unsigned long long>(scrub.repairs),
                static_cast<unsigned long long>(scrub.quarantines));
  }
  return failures;
}

// --postmortem-dir mode: one chaos session armed with the flight recorder
// and a deliberately unmeetable SLO (retry-rate ceiling 0 while chaos
// injects task failures). The run must leave at least one valid *.pm.json
// in `pm_dir` whose fault log attributes the injected chaos — the
// `tools_slider_doctor` ctest then parses it back and checks exactly that.
// With --bitrot the schedule also flips at-rest bits and diverges a
// replica, and the session scrubs as it slides — the dump's fault log
// then carries the bit_rot / scrub notes the doctor's
// --expect-fault=bit_rot gate looks for.
int run_postmortem_scenario(const Options& opt, const std::string& pm_dir) {
  std::filesystem::remove_all(pm_dir);
  std::filesystem::create_directories(pm_dir);
  const auto bench = apps::make_microbenchmark(apps::MicroApp::kHct);
  const Variant& v = kVariants[1];  // folding tree, variable-width window
  const ControlTrace control = run_control(v, opt, bench);

  CostModel cost;
  Cluster cluster(ClusterConfig{.num_machines = opt.machines,
                                .slots_per_machine = 2});
  VanillaEngine engine(cluster, cost);
  // Distinct roots per mode: ctest runs the plain and --bitrot postmortem
  // fixtures concurrently, and they must not remove_all each other's tier.
  const std::filesystem::path tier_dir =
      std::filesystem::temp_directory_path() /
      (opt.bitrot ? "slider_chaos_soak_pm_tier_bitrot"
                  : "slider_chaos_soak_pm_tier");
  std::filesystem::remove_all(tier_dir);
  std::filesystem::create_directories(tier_dir);
  durability::DurableTier tier(tier_dir.string());
  MemoStore memo(cluster, cost);
  memo.attach_durable_tier(&tier);

  robustness::ChaosOptions chaos_options;
  // Front-load the chaos: everything lands in the first half of the
  // control's timeline, so the fault notes precede the dumps.
  chaos_options.horizon = std::max<SimDuration>(control.final_clock * 0.5, 1.0);
  chaos_options.crash_events = 2;
  chaos_options.straggler_events = 2;
  chaos_options.memo_loss_events = 1;
  chaos_options.durable_error_events = 1;
  chaos_options.attempt_failure_prob = 0.25;
  chaos_options.min_live_machines = 2;
  if (opt.bitrot) {
    chaos_options.bit_rot_events = 2;
    chaos_options.replica_divergence_events = 1;
  }
  const robustness::ChaosSchedule schedule =
      robustness::ChaosSchedule::generate(13, chaos_options, opt.machines);
  robustness::ChaosController controller(
      schedule, robustness::ChaosTargets{.cluster = &cluster,
                                         .memo = &memo,
                                         .durable = &tier});

  SliderConfig config = variant_config(v, opt);
  config.fault_provider = &controller;
  config.postmortem_dir = pm_dir;
  if (opt.bitrot) {
    config.scrub_records_per_slide = opt.scrub_budget;
    memo.set_verify_checksums(true);
  }
  obs::SloSpec strict;
  strict.name = "no_retries";
  strict.kind = obs::SloKind::kRetryRateCeiling;
  strict.threshold = 0;  // chaos makes this unmeetable by construction
  strict.min_samples = 1;
  config.slos = {strict};
  SliderSession session(engine, memo, bench.job, config);

  session.initial_run(batch_for(bench, opt, opt.window_splits, 0));
  controller.apply_until(session.sim_clock());
  SplitId next_id = opt.window_splits;
  for (int s = 0; s < opt.slides; ++s) {
    session.slide(opt.slide, batch_for(bench, opt, opt.slide, next_id));
    next_id += opt.slide;
    controller.apply_until(session.sim_clock());
  }
  // Drain the scrubber before the final dump so the embedded ledger
  // snapshot carries resolved (conserved) scrub counters.
  if (opt.bitrot) {
    memo.scrub_durable(1ull << 20);
    memo.scrub_durable(1ull << 20);
  }
  // Final dump after every chaos event has been applied: the complete
  // fault log travels with it, so the doctor's attribution check does not
  // depend on where the schedule placed the crashes.
  obs::FlightRecorder::DumpContext ctx;
  ctx.session = v.name;
  ctx.sim_time = session.sim_clock();
  const std::vector<obs::SloVerdict> verdicts = session.slo_verdicts();
  ctx.verdicts = &verdicts;
  obs::FlightRecorder::global().dump_now("soak_final", ctx);
  std::filesystem::remove_all(tier_dir);

  std::size_t dumps = 0;
  for (const auto& entry : std::filesystem::directory_iterator(pm_dir)) {
    const std::string p = entry.path().string();
    if (p.size() >= 8 && p.compare(p.size() - 8, 8, ".pm.json") == 0) ++dumps;
  }
  if (dumps == 0) {
    std::fprintf(stderr, "postmortem scenario: no *.pm.json produced in %s\n",
                 pm_dir.c_str());
    return 1;
  }
  const std::uint64_t retries =
      obs::WorkLedger::global().snapshot().counters.task_retries;
  std::printf("postmortem scenario: %zu dump(s) in %s (%llu retries "
              "injected)\n",
              dumps, pm_dir.c_str(),
              static_cast<unsigned long long>(retries));
  return 0;
}

std::string arg_value(int argc, char** argv, const char* flag) {
  const std::size_t len = std::strlen(flag);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], flag, len) == 0 && argv[i][len] == '=') {
      return std::string(argv[i] + len + 1);
    }
  }
  return "";
}

bool has_flag(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  opt.bitrot = has_flag(argc, argv, "--bitrot");
  if (const std::string v = arg_value(argc, argv, "--seeds"); !v.empty()) {
    opt.seeds = std::max(1, std::atoi(v.c_str()));
  } else if (opt.bitrot) {
    opt.seeds = 16;  // the bit-rot acceptance bar: >= 16 seeds
  }
  if (const std::string v = arg_value(argc, argv, "--slides"); !v.empty()) {
    opt.slides = std::max(1, std::atoi(v.c_str()));
  }
  if (const std::string v = arg_value(argc, argv, "--machines"); !v.empty()) {
    opt.machines = std::max(3, std::atoi(v.c_str()));
  }
  opt.quiet = has_flag(argc, argv, "--quiet");
  if (has_flag(argc, argv, "--no-report")) opt.report = false;
  if (const std::string phase = arg_value(argc, argv, "--phase");
      phase == "bitrot-victim") {
    return run_bitrot_victim(opt, arg_value(argc, argv, "--dir"));
  }
  if (const std::string v = arg_value(argc, argv, "--postmortem-dir");
      !v.empty()) {
    return run_postmortem_scenario(opt, v);
  }

  // Distinct roots per mode: ctest runs tools_chaos_soak and
  // tools_chaos_soak_bitrot concurrently, and each remove_all's its base.
  const std::filesystem::path base =
      std::filesystem::temp_directory_path() /
      (opt.bitrot ? "slider_chaos_soak_bitrot" : "slider_chaos_soak");
  std::filesystem::remove_all(base);

  const auto hct_bench = apps::make_microbenchmark(apps::MicroApp::kHct);
  const auto flat_bench = apps::make_microbenchmark(apps::MicroApp::kSubStr);
  obs::RobustnessReport totals;
  totals.attempt_cap = 4;  // ChaosOptions default used above
  obs::RunReport report("chaos_soak");
  report.set_param("seeds", static_cast<std::int64_t>(opt.seeds))
      .set_param("slides", static_cast<std::int64_t>(opt.slides))
      .set_param("machines", static_cast<std::int64_t>(opt.machines))
      .set_param("window_splits",
                 static_cast<std::uint64_t>(opt.window_splits))
      .set_param("app", "hct (tree variants), substr (flat tier)");

  int failures = 0;
  durability::ScrubStats grand_scrub;
  std::uint64_t grand_bit_rots = 0;
  std::uint64_t grand_divergences = 0;
  for (const Variant& variant : kVariants) {
    const auto& bench = variant.flat ? flat_bench : hct_bench;
    const ControlTrace control = run_control(variant, opt, bench);
    // Flat-vs-tree identity: the same schedule on the tree-forced twin
    // must produce the same bytes after every run — the tier is a pure
    // routing decision, never a semantic one.
    if (variant.flat) {
      const ControlTrace tree_twin =
          run_control(variant, opt, bench, /*force_tree=*/true);
      if (tree_twin.outputs != control.outputs) {
        std::fprintf(stderr,
                     "FAIL %s: flat tier diverged from tree-forced twin\n",
                     variant.name);
        ++failures;
      }
    }
    RunMetrics variant_metrics;
    robustness::ChaosController::Counters variant_chaos;
    durability::ScrubStats variant_scrub;
    bool variant_ok = true;
    for (int s = 0; s < opt.seeds; ++s) {
      const auto seed = static_cast<std::uint64_t>(s) * 7919 + 13;
      const std::filesystem::path dir =
          base / (std::string(variant.name) + "_" + std::to_string(s));
      std::filesystem::create_directories(dir);
      const ChaosOutcome outcome =
          run_chaos(variant, opt, bench, control, seed, dir);
      if (!outcome.ok) {
        std::fprintf(stderr, "FAIL %s seed=%llu: %s\n", variant.name,
                     static_cast<unsigned long long>(seed),
                     outcome.failure.c_str());
        ++failures;
        variant_ok = false;
        std::filesystem::remove_all(dir);
        continue;
      }
      // Replay determinism: the first seed of every variant runs twice;
      // outputs, chaos counters, and the simulated clock must all match.
      if (s == 0) {
        const std::filesystem::path replay_dir =
            base / (std::string(variant.name) + "_replay");
        std::filesystem::create_directories(replay_dir);
        const ChaosOutcome replay =
            run_chaos(variant, opt, bench, control, seed, replay_dir);
        const bool replay_ok =
            replay.ok && replay.final_outputs == outcome.final_outputs &&
            same_counters(replay.chaos, outcome.chaos) &&
            std::bit_cast<std::uint64_t>(replay.final_clock) ==
                std::bit_cast<std::uint64_t>(outcome.final_clock);
        if (!replay_ok) {
          std::fprintf(stderr, "FAIL %s seed=%llu: replay diverged\n",
                       variant.name,
                       static_cast<unsigned long long>(seed));
          ++failures;
          variant_ok = false;
        }
        std::filesystem::remove_all(replay_dir);
      }
      variant_metrics += outcome.metrics;
      variant_chaos.crashes += outcome.chaos.crashes;
      variant_chaos.recoveries += outcome.chaos.recoveries;
      variant_chaos.stragglers += outcome.chaos.stragglers;
      variant_chaos.memo_losses += outcome.chaos.memo_losses;
      variant_chaos.durable_error_windows +=
          outcome.chaos.durable_error_windows;
      variant_chaos.events_applied += outcome.chaos.events_applied;
      variant_chaos.bit_rots += outcome.chaos.bit_rots;
      variant_chaos.replica_divergences += outcome.chaos.replica_divergences;
      variant_scrub += outcome.scrub;
      std::filesystem::remove_all(dir);
    }
    if (!opt.quiet) {
      std::printf(
          "%-20s seeds=%d crashes=%llu retries=%llu failed_attempts=%llu "
          "max_attempts=%llu %s\n",
          variant.name, opt.seeds,
          static_cast<unsigned long long>(variant_chaos.crashes),
          static_cast<unsigned long long>(variant_metrics.task_retries),
          static_cast<unsigned long long>(variant_metrics.failed_attempts),
          static_cast<unsigned long long>(variant_metrics.max_task_attempts),
          variant_ok ? "OK" : "FAIL");
      if (opt.bitrot) {
        std::printf(
            "%-20s   bit_rots=%llu divergences=%llu scrub: verified=%llu "
            "detected=%llu repairs=%llu quarantines=%llu [%s]\n",
            variant.name,
            static_cast<unsigned long long>(variant_chaos.bit_rots),
            static_cast<unsigned long long>(
                variant_chaos.replica_divergences),
            static_cast<unsigned long long>(variant_scrub.records_verified),
            static_cast<unsigned long long>(
                variant_scrub.corruptions_detected),
            static_cast<unsigned long long>(variant_scrub.repairs),
            static_cast<unsigned long long>(variant_scrub.quarantines),
            variant_scrub.conserved() ? "conserved" : "NOT CONSERVED");
      }
    }
    report.add_row()
        .col("variant", variant.name)
        .col("seeds", static_cast<std::int64_t>(opt.seeds))
        .col("crashes", variant_chaos.crashes)
        .col("recoveries", variant_chaos.recoveries)
        .col("stragglers", variant_chaos.stragglers)
        .col("memo_losses", variant_chaos.memo_losses)
        .col("durable_error_windows", variant_chaos.durable_error_windows)
        .col("bit_rots", variant_chaos.bit_rots)
        .col("replica_divergences", variant_chaos.replica_divergences)
        .col("scrub_records_verified", variant_scrub.records_verified)
        .col("scrub_corruptions_detected", variant_scrub.corruptions_detected)
        .col("scrub_repairs", variant_scrub.repairs)
        .col("scrub_quarantines", variant_scrub.quarantines)
        .col("task_attempts", variant_metrics.task_attempts)
        .col("failed_attempts", variant_metrics.failed_attempts)
        .col("task_retries", variant_metrics.task_retries)
        .col("machines_blacklisted", variant_metrics.machines_blacklisted)
        .col("max_task_attempts", variant_metrics.max_task_attempts)
        .col("outputs_identical", variant_ok);
    grand_scrub += variant_scrub;
    grand_bit_rots += variant_chaos.bit_rots;
    grand_divergences += variant_chaos.replica_divergences;
    totals.seeds += static_cast<std::uint64_t>(opt.seeds);
    totals.crashes += variant_chaos.crashes;
    totals.recoveries += variant_chaos.recoveries;
    totals.stragglers += variant_chaos.stragglers;
    totals.memo_losses += variant_chaos.memo_losses;
    totals.durable_error_windows += variant_chaos.durable_error_windows;
    totals.task_attempts += variant_metrics.task_attempts;
    totals.failed_attempts += variant_metrics.failed_attempts;
    totals.task_retries += variant_metrics.task_retries;
    totals.machines_blacklisted += variant_metrics.machines_blacklisted;
    totals.max_attempts_seen =
        std::max(totals.max_attempts_seen,
                 static_cast<std::int64_t>(variant_metrics.max_task_attempts));
  }
  std::filesystem::remove_all(base);

  if (opt.bitrot) {
    // The injected corruption must actually have been seen and resolved:
    // a soak that never detects anything is testing nothing. Fixed seeds
    // make this deterministic.
    if (grand_bit_rots == 0 || grand_divergences == 0) {
      std::fprintf(stderr,
                   "FAIL bitrot soak: no corruption injected (bit_rots=%llu "
                   "divergences=%llu)\n",
                   static_cast<unsigned long long>(grand_bit_rots),
                   static_cast<unsigned long long>(grand_divergences));
      ++failures;
    }
    if (grand_scrub.corruptions_detected == 0) {
      std::fprintf(stderr,
                   "FAIL bitrot soak: corruption injected but the scrubber "
                   "never detected any\n");
      ++failures;
    }
    // SIGKILL mid-repair + recovery: the capstone scenario.
    failures += run_bitrot_crash_scenario(argv[0], opt);
  }

  // Ledger conservation, now including failure_reexec: per-cause combiner
  // invocations across every control AND chaos run must sum to the
  // aggregate counter.
  const obs::LedgerSnapshot ledger = obs::WorkLedger::global().snapshot();
  const std::uint64_t aggregate =
      obs::StatsRegistry::global().counter("tree.combiner_invocations").value();
  if (ledger.total_invocations() != aggregate) {
    std::fprintf(stderr,
                 "FAIL ledger conservation: per-cause sum %llu != aggregate "
                 "%llu\n",
                 static_cast<unsigned long long>(ledger.total_invocations()),
                 static_cast<unsigned long long>(aggregate));
    ++failures;
  }
  // The ledger's own scrub counters (fed by note_scrub, billed under
  // kScrubRepair) must conserve too, independently of the per-run stats.
  if (ledger.counters.scrub_corruptions_detected !=
      ledger.counters.scrub_repairs + ledger.counters.scrub_quarantines) {
    std::fprintf(stderr,
                 "FAIL ledger scrub conservation: detected=%llu != "
                 "repairs=%llu + quarantines=%llu\n",
                 static_cast<unsigned long long>(
                     ledger.counters.scrub_corruptions_detected),
                 static_cast<unsigned long long>(
                     ledger.counters.scrub_repairs),
                 static_cast<unsigned long long>(
                     ledger.counters.scrub_quarantines));
    ++failures;
  }
  totals.failures_injected = ledger.counters.failures_injected;
  totals.failure_forced_misses = ledger.counters.failure_forced_misses;
  totals.outputs_identical = failures == 0;

  if (opt.report) {
    report.set_robustness(totals);
    report.set_counters(MetricsRegistry::global().snapshot());
    report.merge_stats(obs::StatsRegistry::global().snapshot());
    report.add_note(
        "chaos soak: every variant x seed run under seeded mid-run machine "
        "crashes, stragglers, memo loss, durable write-error windows, and "
        "injected task failures; outputs byte-identical to the failure-free "
        "control, retries within the attempt cap, ledger conserved");
    if (opt.bitrot) {
      report.add_note(
          "bitrot mode: at-rest bit flips + replica divergence injected "
          "continuously, scrubber armed per slide, checksum-verified memo "
          "reads; scrub conservation (detected == repairs + quarantines) "
          "asserted every run, plus a SIGKILL-mid-repair fork whose "
          "recovery converges and matches the control byte for byte");
    }
    const std::string path = report.write();
    if (!path.empty() && !opt.quiet) {
      std::printf("bench report: %s\n", path.c_str());
    }
  }

  if (failures == 0) {
    std::printf("chaos soak: OK (%d variants x %d seeds, %llu failures "
                "injected, %llu retries, outputs byte-identical)\n",
                static_cast<int>(std::size(kVariants)), opt.seeds,
                static_cast<unsigned long long>(totals.failures_injected),
                static_cast<unsigned long long>(totals.task_retries));
    if (opt.bitrot) {
      std::printf("bitrot soak: OK (%llu bit flips + %llu divergences "
                  "injected; scrub verified=%llu detected=%llu repairs=%llu "
                  "quarantines=%llu, conserved)\n",
                  static_cast<unsigned long long>(grand_bit_rots),
                  static_cast<unsigned long long>(grand_divergences),
                  static_cast<unsigned long long>(
                      grand_scrub.records_verified),
                  static_cast<unsigned long long>(
                      grand_scrub.corruptions_detected),
                  static_cast<unsigned long long>(grand_scrub.repairs),
                  static_cast<unsigned long long>(grand_scrub.quarantines));
    }
    return 0;
  }
  std::fprintf(stderr, "chaos soak: %d FAILURE(S)\n", failures);
  return 1;
}
