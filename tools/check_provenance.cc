// check_provenance — lineage-vs-ledger conservation and explain-frontier
// gate.
//
// Two machine-checked properties of the provenance subsystem
// (observability/provenance.h):
//
//   1. Conservation. For every committed run of every tree variant — the
//      five contraction trees, the flat aggregation tier, and a flat tier
//      poisoned back to its fallback tree mid-stream — the per-cause
//      combiner-invocation tallies of the recorded SlideLineage must equal
//      the work ledger's attributed cells for the same run, and the count
//      of reuse records must equal the ledger's combiner_reused. A lineage
//      that under- or over-counts would make every explain() and critical
//      path built on it a lie.
//
//   2. Frontier correctness. For a folding-tree job whose key placement is
//      chosen by this gate, explain(key) must return exactly the
//      independently computed frontier: the level-0 leaves (from
//      describe_tree(), not from the lineage) whose splits were
//      constructed to contain the key — all-"new" on the initial build,
//      and only the added leaves on a slide introducing a fresh key.
//
// With --postmortem-dir=DIR the gate additionally arms the flight
// recorder on the frontier session and forces a dump, producing a
// *.pm.json whose embedded provenance section the slider_doctor
// --explain gate reads back (ctest: tools_slider_doctor_explain).
//
// Usage: check_provenance [--quiet] [--postmortem-dir=DIR]

#include <cstdio>
#include <cstring>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "contraction/describe.h"
#include "data/split.h"
#include "mapreduce/api.h"
#include "observability/flight_recorder.h"
#include "observability/provenance.h"
#include "observability/work_ledger.h"
#include "slider/session.h"

namespace {

using slider::CombineFn;
using slider::JobSpec;
using slider::Record;
using slider::SliderConfig;
using slider::SliderSession;
using slider::SplitPtr;
using slider::TreeKind;
using slider::WindowMode;
using slider::obs::WorkCause;
using slider::obs::WorkLedger;

bool g_quiet = false;
int g_failures = 0;

#define GATE(cond, ...)                                       \
  do {                                                        \
    if (!(cond)) {                                            \
      ++g_failures;                                           \
      std::fprintf(stderr, "FAIL %s:%d: ", __FILE__, __LINE__); \
      std::fprintf(stderr, __VA_ARGS__);                      \
      std::fprintf(stderr, "\n");                             \
    }                                                         \
  } while (0)

// Identity mapper: records pass through as (key, value) pairs, so the
// gate controls key placement per split exactly.
class IdentityMapper final : public slider::Mapper {
 public:
  void map(const Record& input, slider::Emitter& out) const override {
    out.emit(input.key, input.value);
  }
};

CombineFn sum_combiner() {
  return [](const std::string&, const std::string& a, const std::string& b) {
    return std::to_string(std::strtoull(a.c_str(), nullptr, 10) +
                          std::strtoull(b.c_str(), nullptr, 10));
  };
}

JobSpec make_job(const std::string& name, bool flat_eligible,
                 int partitions) {
  JobSpec job;
  job.name = name;
  job.mapper = std::make_shared<IdentityMapper>();
  job.combiner = sum_combiner();
  job.reducer = [](const std::string&,
                   const std::string& v) -> std::optional<std::string> {
    return v;
  };
  job.num_partitions = partitions;
  if (flat_eligible) {
    job.traits.commutative = true;
    job.traits.exactly_associative = true;
    job.traits.flat_kernel = slider::FlatKernel::kSumU64;
  }
  return job;
}

struct Harness {
  Harness()
      : cluster(slider::ClusterConfig{.num_machines = 4, .slots_per_machine = 2}),
        engine(cluster, cost),
        memo(cluster, cost) {}

  slider::CostModel cost{};
  slider::Cluster cluster;
  slider::VanillaEngine engine;
  slider::MemoStore memo;
};

// One synthetic split: `n_keys` distinct keys ("k<base>".."k<base+n-1>"),
// value "1" each, so invocation counts are deterministic.
SplitPtr counting_split(slider::SplitId id, int base, int n_keys,
                        const char* poison_value = nullptr) {
  std::vector<Record> records;
  for (int k = 0; k < n_keys; ++k) {
    records.push_back({"k" + std::to_string(base + k), "1"});
  }
  if (poison_value != nullptr) {
    records.push_back({"poisoned", poison_value});
  }
  return slider::make_split(id, std::move(records));
}

// --- part 1: conservation ----------------------------------------------------

struct ConservationCase {
  const char* name;
  WindowMode mode;
  TreeKind kind;        // ignored when flat
  bool flat = false;
  bool poison = false;  // flat only: inject a non-canonical value mid-stream
  bool split_processing = false;
};

void check_conservation(const ConservationCase& c) {
  WorkLedger::global().reset();
  Harness h;
  const JobSpec job =
      make_job(std::string("prov-gate-") + c.name, c.flat, /*partitions=*/4);

  SliderConfig config;
  config.mode = c.mode;
  if (!c.flat) config.tree_kind = c.kind;
  config.split_processing = c.split_processing;
  config.bucket_width = 2;
  config.record_provenance = true;
  SliderSession session(h.engine, h.memo, job, config);
  if (c.flat) {
    GATE(session.describe_tree(0).kind == "flat",
         "%s: expected flat routing, got %s", c.name,
         session.describe_tree(0).kind.c_str());
  }

  constexpr std::size_t kWindow = 8;
  constexpr std::size_t kSlide = 2;
  constexpr int kKeysPerSplit = 12;
  std::vector<SplitPtr> initial;
  for (std::size_t i = 0; i < kWindow; ++i) {
    initial.push_back(counting_split(i, static_cast<int>(i) * 4,
                                     kKeysPerSplit));
  }
  session.initial_run(std::move(initial));

  slider::SplitId next_id = kWindow;
  const std::size_t remove = c.mode == WindowMode::kAppendOnly ? 0 : kSlide;
  for (int s = 0; s < 3; ++s) {
    std::vector<SplitPtr> added;
    for (std::size_t i = 0; i < kSlide; ++i) {
      // Slide 1 of the poison case carries "007": parses as 7 but does
      // not round-trip the strict codec, demoting the tier mid-stream.
      const bool inject = c.poison && s == 1 && i == 0;
      added.push_back(counting_split(next_id,
                                     static_cast<int>(next_id) * 4,
                                     kKeysPerSplit,
                                     inject ? "007" : nullptr));
      ++next_id;
    }
    session.slide(remove, std::move(added));
    if (c.split_processing) session.run_background();
  }

  if (c.poison) {
    bool any_demoted = false;
    for (int p = 0; p < job.num_partitions; ++p) {
      any_demoted = any_demoted || session.describe_tree(p).kind != "flat";
    }
    GATE(any_demoted, "%s: poison value never demoted any partition",
         c.name);
  }

  const slider::obs::LedgerSnapshot ledger = WorkLedger::global().snapshot();
  const slider::obs::ProvenanceSnapshot prov =
      session.provenance()->snapshot();
  GATE(ledger.recent.size() == prov.raw.size(),
       "%s: ledger committed %zu runs, lineage recorded %zu", c.name,
       ledger.recent.size(), prov.raw.size());
  const std::size_t runs = std::min(ledger.recent.size(), prov.raw.size());
  for (std::size_t r = 0; r < runs; ++r) {
    const slider::obs::SlideRecord& rec = ledger.recent[r];
    const slider::obs::SlideLineage& lin = prov.raw[r];
    std::uint64_t ledger_reused = 0;
    for (std::size_t cause = 0; cause < slider::obs::kWorkCauseCount;
         ++cause) {
      const WorkCause wc = static_cast<WorkCause>(cause);
      std::uint64_t ledger_invocations = 0;
      for (const slider::obs::AttributedWork& part : rec.partitions) {
        const slider::obs::CauseWork work = part.total_for(wc);
        ledger_invocations += work.combiner_invocations;
        ledger_reused += work.combiner_reused;
      }
      GATE(ledger_invocations == lin.cause_invocations[cause],
           "%s run %zu cause %s: ledger=%llu lineage=%llu", c.name, r,
           slider::obs::work_cause_name(wc).data(),
           static_cast<unsigned long long>(ledger_invocations),
           static_cast<unsigned long long>(lin.cause_invocations[cause]));
    }
    GATE(ledger_reused == lin.reused_nodes,
         "%s run %zu: ledger reused=%llu lineage reuse records=%llu",
         c.name, r, static_cast<unsigned long long>(ledger_reused),
         static_cast<unsigned long long>(lin.reused_nodes));
  }
  if (!g_quiet) {
    std::printf("conservation %-18s %zu run(s), %llu node(s) recorded: OK\n",
                c.name, runs,
                static_cast<unsigned long long>([&] {
                  std::uint64_t n = 0;
                  for (const auto& s : prov.raw) n += s.recorded_nodes;
                  return n;
                }()));
  }
}

// --- part 2: explain frontier ------------------------------------------------

// Splits for the frontier gate: single partition, seven distinct keys so
// every sketch stays exact. "hot" lands only in splits 2 and 5; the slide
// later introduces "fresh" in both added splits.
SplitPtr frontier_split(slider::SplitId id, bool with_hot, bool with_fresh) {
  static const char* kFiller[] = {"a", "b", "c", "d", "e", "f"};
  std::vector<Record> records;
  records.push_back({kFiller[id % 6], "1"});
  if (with_hot) records.push_back({"hot", "1"});
  if (with_fresh) records.push_back({"fresh", "1"});
  return slider::make_split(id, std::move(records));
}

// Level-0 node ids of `description` at the given slot indexes — the
// independent frontier source: describe_tree() reads the live tree
// structure, not the lineage under test.
std::set<std::uint64_t> leaf_ids_at(
    const slider::TreeDescription& description,
    const std::set<std::size_t>& indexes) {
  std::set<std::uint64_t> ids;
  for (const slider::TreeNodeDescription& node : description.nodes) {
    if (node.level == 0 && indexes.count(node.index) != 0) {
      ids.insert(node.id);
    }
  }
  return ids;
}

std::set<std::uint64_t> all_leaf_ids(
    const slider::TreeDescription& description) {
  std::set<std::uint64_t> ids;
  for (const slider::TreeNodeDescription& node : description.nodes) {
    if (node.level == 0) ids.insert(node.id);
  }
  return ids;
}

std::set<std::uint64_t> frontier_ids(const slider::obs::Explanation& ex) {
  std::set<std::uint64_t> ids;
  for (const slider::obs::ExplainEntry& e : ex.frontier) ids.insert(e.id);
  return ids;
}

std::string id_set_string(const std::set<std::uint64_t>& ids) {
  std::string out = "{";
  for (const std::uint64_t id : ids) {
    if (out.size() > 1) out += ", ";
    out += std::to_string(id);
  }
  return out + "}";
}

void check_frontier(const std::string& postmortem_dir) {
  WorkLedger::global().reset();
  Harness h;
  const JobSpec job = make_job("prov-gate-frontier", /*flat_eligible=*/false,
                               /*partitions=*/1);
  SliderConfig config;
  config.mode = WindowMode::kVariableWidth;
  config.tree_kind = TreeKind::kFolding;
  config.record_provenance = true;
  config.postmortem_dir = postmortem_dir;  // empty = flight recorder off
  SliderSession session(h.engine, h.memo, job, config);

  constexpr std::size_t kWindow = 8;
  std::vector<SplitPtr> initial;
  for (std::size_t i = 0; i < kWindow; ++i) {
    initial.push_back(frontier_split(i, /*with_hot=*/i == 2 || i == 5,
                                     /*with_fresh=*/false));
  }
  session.initial_run(std::move(initial));

  // Initial build: the frontier of "hot" must be exactly the leaves of
  // splits 2 and 5, every one disposition "new", with exact membership.
  {
    const std::set<std::uint64_t> expected =
        leaf_ids_at(session.describe_tree(0), {2, 5});
    const slider::obs::Explanation ex =
        session.provenance()->explain("hot", 0);
    GATE(ex.found, "initial explain(hot) found nothing");
    GATE(ex.exact, "initial explain(hot) crossed a bloom-only sketch");
    GATE(expected.size() == 2, "describe_tree produced %zu hot leaves",
         expected.size());
    GATE(frontier_ids(ex) == expected,
         "initial explain(hot): frontier does not match the describe_tree "
         "leaf set (%zu vs %zu entries)",
         ex.frontier.size(), expected.size());
    for (const slider::obs::ExplainEntry& e : ex.frontier) {
      GATE(e.disposition == "new",
           "initial frontier node %llu: disposition %s, want new",
           static_cast<unsigned long long>(e.id), e.disposition.c_str());
    }
  }

  // Slide removing the front two splits and introducing "fresh" in both
  // added splits: the frontier of "fresh" must be exactly the two added
  // leaves, again all-"new". Leaf ids are content-stable, so the added
  // leaves are precisely the level-0 ids that appear across the slide
  // (describe-after minus describe-before) — an expectation derived from
  // the live tree structure, independent of the lineage under test.
  const std::set<std::uint64_t> leaves_before =
      all_leaf_ids(session.describe_tree(0));
  std::vector<SplitPtr> added;
  added.push_back(frontier_split(kWindow, false, /*with_fresh=*/true));
  added.push_back(frontier_split(kWindow + 1, false, /*with_fresh=*/true));
  session.slide(2, std::move(added));
  {
    std::set<std::uint64_t> expected =
        all_leaf_ids(session.describe_tree(0));
    for (const std::uint64_t id : leaves_before) expected.erase(id);
    const slider::obs::Explanation ex =
        session.provenance()->explain("fresh", 0);
    GATE(ex.found, "slide explain(fresh) found nothing");
    GATE(ex.exact, "slide explain(fresh) crossed a bloom-only sketch");
    GATE(expected.size() == 2, "describe_tree produced %zu fresh leaves",
         expected.size());
    GATE(frontier_ids(ex) == expected,
         "slide explain(fresh): frontier %s != added leaves %s",
         id_set_string(frontier_ids(ex)).c_str(),
         id_set_string(expected).c_str());
    for (const slider::obs::ExplainEntry& e : ex.frontier) {
      GATE(e.disposition == "new",
           "slide frontier node %llu: disposition %s, want new",
           static_cast<unsigned long long>(e.id), e.disposition.c_str());
    }
    // The untouched "hot" key must still resolve after the slide. Its
    // frontier may legitimately contain recomputed spine nodes (removal
    // dirt re-executes ancestors of the hot leaves), but never a fresh
    // leaf: "fresh"-carrying leaves do not contain the key.
    const slider::obs::Explanation hot =
        session.provenance()->explain("hot", 0);
    GATE(hot.found, "slide explain(hot) found nothing");
    for (const slider::obs::ExplainEntry& e : hot.frontier) {
      GATE(frontier_ids(ex).count(e.id) == 0,
           "hot after slide: frontier crossed fresh leaf %llu",
           static_cast<unsigned long long>(e.id));
    }
  }

  if (!postmortem_dir.empty()) {
    // Force a dump carrying the lineage above; the slider_doctor
    // --explain=fresh ctest reads it back offline.
    slider::obs::FlightRecorder::global().request_dump("provenance_gate");
    session.slide(0, {frontier_split(kWindow + 2, false, true)});
    GATE(slider::obs::FlightRecorder::global().dumps_written() > 0,
         "flight recorder wrote no dump into %s", postmortem_dir.c_str());
  }
  if (!g_quiet) std::printf("explain frontier gates: OK\n");
}

std::string arg_value(int argc, char** argv, const char* flag) {
  const std::size_t len = std::strlen(flag);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], flag, len) == 0 && argv[i][len] == '=') {
      return std::string(argv[i] + len + 1);
    }
  }
  return "";
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quiet") == 0) g_quiet = true;
  }
  const std::string postmortem_dir =
      arg_value(argc, argv, "--postmortem-dir");

  const ConservationCase cases[] = {
      {"folding", WindowMode::kVariableWidth, TreeKind::kFolding},
      {"randomized", WindowMode::kVariableWidth,
       TreeKind::kRandomizedFolding},
      {"strawman", WindowMode::kVariableWidth, TreeKind::kStrawman},
      {"rotating", WindowMode::kFixedWidth, TreeKind::kRotating},
      {"rotating_split", WindowMode::kFixedWidth, TreeKind::kRotating,
       /*flat=*/false, /*poison=*/false, /*split_processing=*/true},
      {"coalescing", WindowMode::kAppendOnly, TreeKind::kCoalescing},
      {"flat", WindowMode::kVariableWidth, TreeKind::kFolding,
       /*flat=*/true},
      {"flat_poisoned", WindowMode::kVariableWidth, TreeKind::kFolding,
       /*flat=*/true, /*poison=*/true},
  };
  for (const ConservationCase& c : cases) check_conservation(c);

  check_frontier(postmortem_dir);

  if (g_failures != 0) {
    std::fprintf(stderr, "check_provenance: %d gate failure(s)\n",
                 g_failures);
    return 1;
  }
  std::printf("check_provenance: all gates passed\n");
  return 0;
}
