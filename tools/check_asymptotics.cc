// Asymptotic regression gate (companion report arXiv:1604.00794).
//
// Self-adjusting contraction trees promise O(Δ log w) work per slide: the
// combiner invocations attributable to the window delta should scale with
// Δ·log2(w), not with the window size w. This tool makes that claim
// machine-checked on every PR:
//
//   1. For each tree variant (folding / rotating / coalescing) it runs a
//      (Δ, w) sweep of real SliderSessions and reads the *delta-attributed*
//      combiner invocations off the causal work ledger — only work booked
//      to window_add / window_remove counts, so memo-eviction recomputes or
//      recovery replays can never masquerade as delta work.
//   2. It fits the measurements against the model  y = c · Δ · log2(w)
//      (least squares through the origin) and reports the per-variant fit
//      constant c plus the worst-case per-point ratio.
//   3. It compares c against the committed baseline
//      (bench/baselines/asymptotics.json) and exits nonzero if any variant
//      regressed by more than the baseline's tolerance (default 1.25×).
//
// Modes:
//   (default)          run the sweep, write the fit report, gate vs baseline
//   --write-baseline   run the sweep and (re)write the baseline file
//   --self-test        negative test: run the *strawman* tree — whose
//                      per-slide work is window-proportional by design —
//                      through the same fit + gate, and exit 0 only if the
//                      gate correctly FAILS it. Proves the gate has teeth.
//
// Flags: --baseline=PATH  --report=PATH  --quiet
//
// The gate deliberately measures invocation *counts*, not wall-clock or
// simulated time: counts are deterministic and sanitizer-stable, so the
// gate behaves identically under asan/tsan and across machines.

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "observability/json_writer.h"
#include "observability/work_ledger.h"

namespace slider {
namespace {

struct SweepPoint {
  std::size_t window = 0;
  std::size_t delta = 0;
  std::uint64_t delta_invocations = 0;  // window_add + window_remove
  double model_x = 0;                   // Δ · log2(w)
};

struct VariantFit {
  std::string name;
  std::vector<SweepPoint> points;
  double fit_constant = 0;   // least squares through the origin
  double max_point_ratio = 0;  // max y/x over the sweep
  bool linear_model = false;   // fitted against c·Δ, not c·Δ·log2(w)
};

struct VariantSpec {
  std::string name;
  WindowMode mode;
  TreeKind kind;
  // Flat tier: leave tree_kind unset so the session routes the eligible
  // substr combiner to the flat aggregator. Its per-slide work is O(Δ)
  // with no log factor, so it gets the stricter linear model.
  bool flat = false;
  // Fit y = c·Δ instead of y = c·Δ·log2(w). Implied by `flat`; also used
  // standalone by the self-test to prove tree-tier work cannot sneak
  // through the flat tier's linear gate.
  bool linear_model = false;
};

// Delta-attributed invocations currently booked in the process ledger.
std::uint64_t delta_attributed_invocations() {
  const obs::LedgerSnapshot snap = obs::WorkLedger::global().snapshot();
  return snap.total_for(obs::WorkCause::kWindowAdd).combiner_invocations +
         snap.total_for(obs::WorkCause::kWindowRemove).combiner_invocations;
}

VariantFit run_sweep(const VariantSpec& spec, bool quiet) {
  constexpr std::size_t kWindows[] = {48, 96, 192};
  constexpr std::size_t kDeltas[] = {2, 4, 8};
  constexpr int kWarmSlides = 2;

  VariantFit fit;
  fit.name = spec.name;
  fit.linear_model = spec.flat || spec.linear_model;
  const apps::MicroBenchmark app =
      apps::make_microbenchmark(apps::MicroApp::kSubStr);

  for (const std::size_t w : kWindows) {
    for (const std::size_t delta : kDeltas) {
      bench::BenchEnv env;  // fresh cluster + memo per point
      bench::ExperimentParams params;
      params.window_splits = w;
      params.records_per_split = 20;
      params.change_fraction = static_cast<double>(delta) / static_cast<double>(w);
      params.mode = spec.mode;
      if (spec.flat) {
        params.enable_flat_tier = true;  // tree_kind stays unset
      } else {
        params.tree_kind = spec.kind;
      }
      params.seed = 7 + w * 31 + delta;
      bench::Driver driver(env, app, params);
      driver.initial_run();
      for (int i = 0; i < kWarmSlides; ++i) driver.slide();

      const std::uint64_t before = delta_attributed_invocations();
      driver.slide();
      const std::uint64_t after = delta_attributed_invocations();

      SweepPoint point;
      point.window = w;
      point.delta = delta;
      point.delta_invocations = after - before;
      point.model_x =
          (spec.flat || spec.linear_model)
              ? static_cast<double>(delta)
              : static_cast<double>(delta) * std::log2(static_cast<double>(w));
      fit.points.push_back(point);
      if (!quiet) {
        std::printf("  %-10s w=%4zu delta=%2zu  delta_inv=%8llu  x=%7.2f  y/x=%7.2f\n",
                    spec.name.c_str(), w, delta,
                    static_cast<unsigned long long>(point.delta_invocations),
                    point.model_x,
                    static_cast<double>(point.delta_invocations) / point.model_x);
      }
    }
  }

  // Least squares through the origin: c = Σ(x·y) / Σ(x²).
  double xy = 0;
  double xx = 0;
  for (const SweepPoint& p : fit.points) {
    const double y = static_cast<double>(p.delta_invocations);
    xy += p.model_x * y;
    xx += p.model_x * p.model_x;
    fit.max_point_ratio = std::max(fit.max_point_ratio, y / p.model_x);
  }
  fit.fit_constant = xx > 0 ? xy / xx : 0;
  return fit;
}

// --- minimal JSON number extraction for the (self-authored) baseline ------
//
// The baseline file is written by this tool; the reader only needs to find
// `"key": <number>` pairs, so a scanner beats carrying a JSON parser.
bool find_number(const std::string& doc, const std::string& key, double* out) {
  const std::string needle = "\"" + key + "\"";
  std::size_t at = doc.find(needle);
  if (at == std::string::npos) return false;
  at = doc.find(':', at + needle.size());
  if (at == std::string::npos) return false;
  ++at;
  while (at < doc.size() && std::isspace(static_cast<unsigned char>(doc[at]))) {
    ++at;
  }
  char* end = nullptr;
  const double value = std::strtod(doc.c_str() + at, &end);
  if (end == doc.c_str() + at) return false;
  *out = value;
  return true;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return "";
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::string fits_to_json(const std::vector<VariantFit>& fits,
                         double tolerance) {
  obs::JsonWriter json;
  json.begin_object();
  json.key("schema_version").value(static_cast<std::int64_t>(1));
  json.key("model").value(std::string(
      "per-variant: c * delta * log2(window) for trees, c * delta for the "
      "flat tier (see variants.*.model)"));
  json.key("fit").value(std::string("least_squares_through_origin"));
  json.key("tolerance").value(tolerance);
  json.key("variants").begin_object();
  for (const VariantFit& fit : fits) {
    json.key(fit.name).begin_object();
    json.key("model").value(std::string(
        fit.linear_model ? "delta_invocations = c * delta"
                         : "delta_invocations = c * delta * log2(window)"));
    json.key("fit_constant").value(fit.fit_constant);
    json.key("max_point_ratio").value(fit.max_point_ratio);
    json.key("points").begin_array();
    for (const SweepPoint& p : fit.points) {
      json.begin_object();
      json.key("window").value(static_cast<std::uint64_t>(p.window));
      json.key("delta").value(static_cast<std::uint64_t>(p.delta));
      json.key("delta_invocations").value(p.delta_invocations);
      json.key("model_x").value(p.model_x);
      json.end_object();
    }
    json.end_array();
    json.end_object();
  }
  json.end_object();
  json.end_object();
  return json.take();
}

bool write_file(const std::string& path, const std::string& contents) {
  std::ofstream out(path);
  if (!out) return false;
  out << contents;
  return static_cast<bool>(out);
}

// Gate one variant's fit against the baseline document. Returns true when
// the variant passes.
bool gate_variant(const VariantFit& fit, const std::string& baseline_doc,
                  const std::string& baseline_key, double tolerance) {
  double baseline_c = 0;
  // The baseline nests fit_constant under the variant name; scan for the
  // variant key first so the right fit_constant is picked up.
  const std::size_t at = baseline_doc.find("\"" + baseline_key + "\"");
  if (at == std::string::npos) {
    std::fprintf(stderr, "GATE ERROR: baseline has no variant '%s'\n",
                 baseline_key.c_str());
    return false;
  }
  if (!find_number(baseline_doc.substr(at), "fit_constant", &baseline_c) ||
      baseline_c <= 0) {
    std::fprintf(stderr, "GATE ERROR: baseline fit_constant for '%s' missing\n",
                 baseline_key.c_str());
    return false;
  }
  const double limit = baseline_c * tolerance;
  const bool pass = fit.fit_constant > 0 && fit.fit_constant <= limit;
  std::printf("gate %-10s fit=%8.2f baseline=%8.2f limit=%8.2f  %s\n",
              fit.name.c_str(), fit.fit_constant, baseline_c, limit,
              pass ? "PASS" : "FAIL");
  return pass;
}

int run(int argc, char** argv) {
  std::string baseline_path = "bench/baselines/asymptotics.json";
  std::string report_path = "asymptotics_report.json";
  bool write_baseline = false;
  bool self_test = false;
  bool quiet = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--baseline=", 0) == 0) {
      baseline_path = arg.substr(std::strlen("--baseline="));
    } else if (arg.rfind("--report=", 0) == 0) {
      report_path = arg.substr(std::strlen("--report="));
    } else if (arg == "--write-baseline") {
      write_baseline = true;
    } else if (arg == "--self-test") {
      self_test = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else {
      std::fprintf(stderr,
                   "usage: check_asymptotics [--baseline=PATH] [--report=PATH]"
                   " [--write-baseline] [--self-test] [--quiet]\n");
      return 2;
    }
  }

  if (self_test) {
    // Negative test: the strawman tree touches every node on every slide,
    // so its delta-attributed work is window-proportional. Fitting it
    // against c·Δ·log2(w) and gating against the *folding* baseline must
    // FAIL — if it passes, the gate has no teeth.
    std::printf("self-test: strawman (window-proportional) must fail the gate\n");
    const VariantFit fit = run_sweep(
        {"strawman", WindowMode::kVariableWidth, TreeKind::kStrawman}, quiet);
    const std::string baseline_doc = read_file(baseline_path);
    if (baseline_doc.empty()) {
      std::fprintf(stderr, "cannot read baseline %s\n", baseline_path.c_str());
      return 2;
    }
    double tolerance = 1.25;
    find_number(baseline_doc, "tolerance", &tolerance);
    const bool passed_gate =
        gate_variant(fit, baseline_doc, "folding", tolerance);
    if (passed_gate) {
      std::fprintf(stderr,
                   "SELF-TEST FAILED: window-proportional work passed the "
                   "asymptotic gate\n");
      return 1;
    }
    // Second negative, one per gate model: strawman work fitted against
    // the flat tier's linear y = c·Δ model must fail the flat baseline.
    // (Window-proportional work has an unbounded per-Δ constant as w
    // grows, so it can never hide behind the flat tier's budget.)
    std::printf(
        "self-test: strawman (window-proportional) must fail the flat "
        "linear gate\n");
    VariantFit linear_probe = run_sweep({"strawman", WindowMode::kVariableWidth,
                                         TreeKind::kStrawman, /*flat=*/false,
                                         /*linear_model=*/true},
                                        quiet);
    linear_probe.name = "strawman_as_flat";
    const bool passed_linear_gate =
        gate_variant(linear_probe, baseline_doc, "flat", tolerance);
    if (passed_linear_gate) {
      std::fprintf(stderr,
                   "SELF-TEST FAILED: window-proportional work passed the "
                   "flat tier's linear gate\n");
      return 1;
    }
    std::printf(
        "self-test OK: both gates correctly rejected out-of-model work\n");
    return 0;
  }

  const VariantSpec specs[] = {
      {"folding", WindowMode::kVariableWidth, TreeKind::kFolding},
      {"rotating", WindowMode::kFixedWidth, TreeKind::kRotating},
      {"coalescing", WindowMode::kAppendOnly, TreeKind::kCoalescing},
      // Flat tier: kind is unused (tree_kind stays unset so the session
      // routes to the flat aggregator); gated against the stricter c·Δ
      // model — per-slide work must be independent of the window size.
      {"flat", WindowMode::kVariableWidth, TreeKind::kFolding, /*flat=*/true},
  };
  std::vector<VariantFit> fits;
  for (const VariantSpec& spec : specs) {
    if (!quiet) std::printf("sweep: %s\n", spec.name.c_str());
    fits.push_back(run_sweep(spec, quiet));
  }

  double tolerance = 1.25;
  if (!write_baseline) {
    const std::string baseline_doc = read_file(baseline_path);
    if (baseline_doc.empty()) {
      std::fprintf(stderr,
                   "cannot read baseline %s (run with --write-baseline to "
                   "create it)\n",
                   baseline_path.c_str());
      return 2;
    }
    find_number(baseline_doc, "tolerance", &tolerance);
    const std::string report = fits_to_json(fits, tolerance);
    if (!write_file(report_path, report)) {
      std::fprintf(stderr, "cannot write report %s\n", report_path.c_str());
      return 2;
    }
    std::printf("fit report: %s\n", report_path.c_str());
    bool all_pass = true;
    for (const VariantFit& fit : fits) {
      all_pass &= gate_variant(fit, baseline_doc, fit.name, tolerance);
    }
    if (!all_pass) {
      std::fprintf(stderr,
                   "\nASYMPTOTIC GATE FAILED: delta-attributed work regressed "
                   ">%.0f%% vs %s.\nIf the regression is intended (e.g. an "
                   "accounting change), re-baseline with --write-baseline and "
                   "commit the new file.\n",
                   (tolerance - 1.0) * 100.0, baseline_path.c_str());
      return 1;
    }
    std::printf("asymptotic gate: all variants within %.2fx of baseline\n",
                tolerance);
    return 0;
  }

  const std::string baseline = fits_to_json(fits, tolerance);
  if (!write_file(baseline_path, baseline)) {
    std::fprintf(stderr, "cannot write baseline %s\n", baseline_path.c_str());
    return 2;
  }
  std::printf("baseline written: %s\n", baseline_path.c_str());
  return 0;
}

}  // namespace
}  // namespace slider

int main(int argc, char** argv) { return slider::run(argc, argv); }
