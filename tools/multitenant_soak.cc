// multitenant_soak — the serving layer's correctness gate.
//
// Drives one SessionManager multiplexing many tenants (mixed micro-apps x
// mixed tree variants) over a shared MemoStore + durable tier + cluster,
// with a seeded chaos schedule applied between rounds, and checks that
// sharing never leaks across tenants:
//
//   * BYTE IDENTITY: after every executed run, each tenant's serialized
//     outputs must equal an isolated single-tenant control session fed
//     the same inputs — across machine crashes, memo loss, durable error
//     windows, injected task failures, per-tenant quota evictions, and
//     idle-checkpoint/re-hydrate cycles. Tenants sharing a profile run
//     IDENTICAL jobs, so this simultaneously proves tenant-salted memo
//     keys never alias (two identical tenants, one store, no cross-talk).
//   * LIFECYCLE: "napper" tenants go idle long enough to be checkpointed
//     to the spool and destroyed, then transparently re-hydrate on their
//     next slide; at least one tenant must complete the full
//     checkpoint-idle -> hydrate-on-slide loop.
//   * ADMISSION: a burst tenant overruns the shed watermark; the excess
//     is shed, the accepted prefix still matches its control.
//   * CONSERVATION: the causal ledger still conserves globally
//     (per-cause invocations == the aggregate tree counter), per-tenant
//     cells sum to <= the totals, and quota-eviction counts agree across
//     the store's per-tenant cells, its aggregate stats, and the ledger.
//
// Exit status 0 iff every check passed. Writes BENCH_multitenant_soak.json
// unless --no-report.
//
// Run:  ./build/tools/multitenant_soak --tenants=48
// CI:   registered as the `tools_multitenant_soak` ctest (small geometry).

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "apps/microbench.h"
#include "data/serde.h"
#include "durability/durable_tier.h"
#include "observability/run_report.h"
#include "observability/stats.h"
#include "observability/work_ledger.h"
#include "robustness/chaos.h"
#include "serving/session_manager.h"

namespace {

using namespace slider;

struct Options {
  int tenants = 48;
  int rounds = 6;
  int machines = 6;
  std::size_t window_splits = 10;
  std::size_t records_per_split = 12;
  std::size_t slide = 2;
  bool quiet = false;
  bool report = true;
};

struct Profile {
  const char* name;
  apps::MicroApp app;
  WindowMode mode;
  std::optional<TreeKind> kind;  // nullopt = let the flat tier route
  bool split_processing;
};

// Mixed fleet: every tree variant, both window-mode families, the flat
// aggregation tier, and both split-processing background modes.
constexpr Profile kProfiles[] = {
    {"hct_folding", apps::MicroApp::kHct, WindowMode::kVariableWidth,
     TreeKind::kFolding, false},
    {"substr_flat", apps::MicroApp::kSubStr, WindowMode::kVariableWidth,
     std::nullopt, false},
    {"kmeans_rotating", apps::MicroApp::kKMeans, WindowMode::kFixedWidth,
     TreeKind::kRotating, true},
    {"matrix_randomized", apps::MicroApp::kMatrix, WindowMode::kVariableWidth,
     TreeKind::kRandomizedFolding, false},
    {"knn_coalescing", apps::MicroApp::kKnn, WindowMode::kAppendOnly,
     TreeKind::kCoalescing, true},
    {"hct_strawman", apps::MicroApp::kHct, WindowMode::kVariableWidth,
     TreeKind::kStrawman, false},
};
constexpr std::size_t kProfileCount = std::size(kProfiles);

const Profile& profile_of(int tenant) {
  return kProfiles[static_cast<std::size_t>(tenant) % kProfileCount];
}
// Nappers skip two consecutive rounds (the idle-checkpoint threshold);
// quota-tight tenants get an entry quota far below their working set.
bool is_napper(int tenant) { return tenant % 5 == 3; }
bool is_quota_tight(int tenant) { return tenant % 7 == 1; }

// Same deterministic input convention as chaos_soak: batch contents are a
// pure function of the split ids, so tenants of one profile and their
// control see identical bytes.
std::vector<SplitPtr> batch_for(const Profile& profile, const Options& opt,
                                std::size_t count, SplitId first_id) {
  Rng rng(777 + first_id);
  auto records = apps::generate_input(
      profile.app, count * opt.records_per_split, rng, first_id * 1'000'000);
  return make_splits(std::move(records), opt.records_per_split, first_id);
}

SliderConfig profile_config(const Profile& profile, const Options& opt) {
  SliderConfig config;
  config.mode = profile.mode;
  config.tree_kind = profile.kind;
  config.split_processing = profile.split_processing;
  config.bucket_width = opt.slide;
  return config;
}

std::size_t remove_for(const Profile& profile, const Options& opt) {
  return profile.mode == WindowMode::kAppendOnly ? 0 : opt.slide;
}

std::vector<std::string> output_bytes(const SliderSession& session) {
  std::vector<std::string> out;
  out.reserve(session.output().size());
  for (const KVTable& table : session.output()) {
    out.push_back(serialize_table(table));
  }
  return out;
}

// Isolated single-tenant control: fresh cluster + private store, no
// chaos, no tenant salt — the bytes every fleet tenant of this profile
// must reproduce. Mirrors the manager's execution order (background phase
// after every run when split processing is on).
std::vector<std::vector<std::string>> run_control(const Profile& profile,
                                                  const Options& opt,
                                                  std::size_t runs) {
  CostModel cost;
  Cluster cluster(ClusterConfig{.num_machines = opt.machines,
                                .slots_per_machine = 2});
  VanillaEngine engine(cluster, cost);
  MemoStore memo(cluster, cost);
  const auto bench = apps::make_microbenchmark(profile.app);
  SliderSession session(engine, memo, bench.job, profile_config(profile, opt));

  std::vector<std::vector<std::string>> outputs;
  session.initial_run(batch_for(profile, opt, opt.window_splits, 0));
  if (profile.split_processing) session.run_background();
  outputs.push_back(output_bytes(session));
  SplitId next_id = opt.window_splits;
  for (std::size_t s = 1; s < runs; ++s) {
    session.slide(remove_for(profile, opt),
                  batch_for(profile, opt, opt.slide, next_id));
    next_id += opt.slide;
    if (profile.split_processing) session.run_background();
    outputs.push_back(output_bytes(session));
  }
  return outputs;
}

std::string arg_value(int argc, char** argv, const char* flag) {
  const std::size_t len = std::strlen(flag);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], flag, len) == 0 && argv[i][len] == '=') {
      return std::string(argv[i] + len + 1);
    }
  }
  return "";
}

bool has_flag(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (const std::string v = arg_value(argc, argv, "--tenants"); !v.empty()) {
    opt.tenants = std::max(static_cast<int>(kProfileCount),
                           std::atoi(v.c_str()));
  }
  if (const std::string v = arg_value(argc, argv, "--rounds"); !v.empty()) {
    opt.rounds = std::max(6, std::atoi(v.c_str()));
  }
  if (const std::string v = arg_value(argc, argv, "--machines"); !v.empty()) {
    opt.machines = std::max(3, std::atoi(v.c_str()));
  }
  opt.quiet = has_flag(argc, argv, "--quiet");
  if (has_flag(argc, argv, "--no-report")) opt.report = false;

  CostModel cost;
  Cluster cluster(ClusterConfig{.num_machines = opt.machines,
                                .slots_per_machine = 2});
  VanillaEngine engine(cluster, cost);
  const std::filesystem::path tier_dir =
      std::filesystem::temp_directory_path() / "slider_multitenant_soak_tier";
  std::filesystem::remove_all(tier_dir);
  std::filesystem::create_directories(tier_dir);
  durability::DurableTier tier(tier_dir.string());
  MemoStore memo(cluster, cost);
  memo.attach_durable_tier(&tier);

  // One chaos timeline for the whole fleet, ticked once per round at the
  // quiescent point between drains.
  robustness::ChaosOptions chaos_options;
  chaos_options.horizon = static_cast<SimDuration>(opt.rounds + 1);
  chaos_options.crash_events = 2;
  chaos_options.straggler_events = 2;
  chaos_options.memo_loss_events = 2;
  chaos_options.durable_error_events = 1;
  chaos_options.attempt_failure_prob = 0.03;
  chaos_options.min_live_machines = 2;
  const robustness::ChaosSchedule schedule =
      robustness::ChaosSchedule::generate(29, chaos_options, opt.machines);
  robustness::ChaosController controller(
      schedule, robustness::ChaosTargets{.cluster = &cluster,
                                         .memo = &memo,
                                         .durable = &tier});

  serving::SessionManagerOptions manager_options;
  manager_options.shards = 8;
  manager_options.queue_watermark = 4;
  manager_options.shed_watermark = 6;
  manager_options.idle_checkpoint_rounds = 2;
  serving::SessionManager manager(engine, memo, manager_options);

  int failures = 0;
  const auto fail = [&](const std::string& what) {
    std::fprintf(stderr, "FAIL %s\n", what.c_str());
    ++failures;
  };

  std::vector<std::string> names;
  std::vector<SplitId> next_id(static_cast<std::size_t>(opt.tenants));
  for (int i = 0; i < opt.tenants; ++i) {
    const Profile& profile = profile_of(i);
    serving::TenantSpec spec;
    spec.name = "tenant-" + std::to_string(i);
    const auto bench = apps::make_microbenchmark(profile.app);
    spec.job = bench.job;
    spec.config = profile_config(profile, opt);
    spec.config.fault_provider = &controller;
    if (is_quota_tight(i)) spec.quota.max_entries = 8;
    if (!manager.add_tenant(std::move(spec),
                            batch_for(profile, opt, opt.window_splits, 0))) {
      fail("add_tenant rejected tenant " + std::to_string(i));
    }
    names.push_back("tenant-" + std::to_string(i));
    next_id[static_cast<std::size_t>(i)] = opt.window_splits;
  }

  // Per tenant: (executed-run count -> serialized outputs) observations,
  // compared against the profile control after the fleet run.
  std::vector<std::map<std::uint64_t, std::vector<std::string>>> observed(
      static_cast<std::size_t>(opt.tenants));
  bool shed_seen = false;
  bool queued_seen = false;
  for (int round = 0; round < opt.rounds; ++round) {
    if (round > 0) {
      for (int i = 0; i < opt.tenants; ++i) {
        // Nappers sit out rounds 2 and 3 back-to-back: one round past the
        // idle threshold, so the manager checkpoints them out.
        if (is_napper(i) && (round == 2 || round == 3)) continue;
        const Profile& profile = profile_of(i);
        const int submits =
            (i == 0 && round == opt.rounds - 1)
                ? static_cast<int>(manager_options.shed_watermark) + 4
                : 1;
        for (int k = 0; k < submits; ++k) {
          const auto& id = next_id[static_cast<std::size_t>(i)];
          const serving::AdmitResult result = manager.submit(
              names[static_cast<std::size_t>(i)], remove_for(profile, opt),
              batch_for(profile, opt, opt.slide, id));
          if (result == serving::AdmitResult::kShed) {
            shed_seen = true;
            continue;  // shed batches are regenerated verbatim if resent
          }
          if (result == serving::AdmitResult::kQueued) queued_seen = true;
          next_id[static_cast<std::size_t>(i)] += opt.slide;
        }
      }
    }
    manager.run_pending();
    controller.apply_until(static_cast<SimDuration>(round + 1));
    for (int i = 0; i < opt.tenants; ++i) {
      const serving::TenantStatus status =
          manager.status(names[static_cast<std::size_t>(i)]);
      auto& seen = observed[static_cast<std::size_t>(i)];
      if (status.counters.executed > 0 &&
          seen.find(status.counters.executed) == seen.end()) {
        seen.emplace(status.counters.executed,
                     manager.last_outputs(names[static_cast<std::size_t>(i)]));
      }
    }
  }

  // --- byte identity vs isolated controls -------------------------------
  std::vector<std::uint64_t> profile_max_runs(kProfileCount, 0);
  for (int i = 0; i < opt.tenants; ++i) {
    const auto& seen = observed[static_cast<std::size_t>(i)];
    if (seen.empty()) {
      fail("tenant " + names[static_cast<std::size_t>(i)] +
           " never executed a run");
      continue;
    }
    auto& max_runs =
        profile_max_runs[static_cast<std::size_t>(i) % kProfileCount];
    max_runs = std::max(max_runs, seen.rbegin()->first);
  }
  std::uint64_t identity_checks = 0;
  for (std::size_t p = 0; p < kProfileCount; ++p) {
    if (profile_max_runs[p] == 0) continue;
    const std::vector<std::vector<std::string>> control =
        run_control(kProfiles[p], opt,
                    static_cast<std::size_t>(profile_max_runs[p]));
    for (int i = 0; i < opt.tenants; ++i) {
      if (static_cast<std::size_t>(i) % kProfileCount != p) continue;
      for (const auto& [runs, outputs] : observed[static_cast<std::size_t>(i)]) {
        ++identity_checks;
        if (outputs != control[static_cast<std::size_t>(runs - 1)]) {
          fail("tenant " + names[static_cast<std::size_t>(i)] +
               " diverged from its isolated control after run " +
               std::to_string(runs));
        }
      }
    }
  }

  // --- lifecycle: checkpoint-idle -> hydrate-on-slide -------------------
  std::uint64_t checkpoints = 0;
  std::uint64_t hydrations = 0;
  int nappers_cycled = 0;
  for (int i = 0; i < opt.tenants; ++i) {
    const serving::TenantStatus status =
        manager.status(names[static_cast<std::size_t>(i)]);
    if (status.unusable) {
      fail("tenant " + status.name + " became unusable (hydrate failed)");
    }
    checkpoints += status.counters.checkpoints;
    hydrations += status.counters.hydrations;
    if (is_napper(i)) {
      if (status.counters.checkpoints >= 1 &&
          status.counters.hydrations >= 1) {
        ++nappers_cycled;
      } else {
        fail("napper " + status.name + " did not complete the "
             "checkpoint/hydrate cycle (checkpoints=" +
             std::to_string(status.counters.checkpoints) + ", hydrations=" +
             std::to_string(status.counters.hydrations) + ")");
      }
    }
  }
  if (nappers_cycled == 0) {
    fail("no tenant went through checkpoint-idle -> hydrate-on-slide");
  }

  // --- admission control ------------------------------------------------
  const serving::TenantStatus burst = manager.status(names[0]);
  if (!shed_seen || burst.counters.shed < 4) {
    fail("burst tenant was not shed past the watermark (shed=" +
         std::to_string(burst.counters.shed) + ")");
  }
  if (!queued_seen) fail("backlog watermark never reported kQueued");

  // --- quota evictions + conservation -----------------------------------
  std::uint64_t quota_evictions_cells = 0;
  for (const TenantUsage& usage : memo.tenant_usage_snapshot()) {
    quota_evictions_cells += usage.quota_evictions;
  }
  const MemoStoreStats store_stats = memo.stats();
  const obs::LedgerSnapshot ledger = obs::WorkLedger::global().snapshot();
  if (quota_evictions_cells == 0) {
    fail("no quota evictions despite quota-tight tenants");
  }
  if (quota_evictions_cells != store_stats.quota_evictions ||
      store_stats.quota_evictions != ledger.counters.quota_evictions) {
    fail("quota-eviction counters diverged: tenant cells " +
         std::to_string(quota_evictions_cells) + ", store stats " +
         std::to_string(store_stats.quota_evictions) + ", ledger " +
         std::to_string(ledger.counters.quota_evictions));
  }
  const std::uint64_t aggregate =
      obs::StatsRegistry::global().counter("tree.combiner_invocations").value();
  if (ledger.total_invocations() != aggregate) {
    fail("ledger conservation: per-cause sum " +
         std::to_string(ledger.total_invocations()) + " != aggregate " +
         std::to_string(aggregate));
  }
  std::uint64_t tenant_invocations = 0;
  std::uint64_t tenant_runs = 0;
  for (const obs::TenantWork& t : ledger.tenants) {
    tenant_invocations += t.total_invocations();
    tenant_runs += t.runs_committed;
  }
  if (tenant_invocations > ledger.total_invocations() ||
      tenant_runs > ledger.runs_committed) {
    fail("per-tenant ledger cells exceed the fleet totals");
  }
  if (ledger.tenants.size() < static_cast<std::size_t>(opt.tenants)) {
    fail("ledger is missing tenant cells: " +
         std::to_string(ledger.tenants.size()) + " < " +
         std::to_string(opt.tenants));
  }

  if (opt.report) {
    obs::RunReport report("multitenant_soak");
    report.set_param("tenants", static_cast<std::int64_t>(opt.tenants))
        .set_param("rounds", static_cast<std::int64_t>(opt.rounds))
        .set_param("machines", static_cast<std::int64_t>(opt.machines))
        .set_param("profiles", static_cast<std::int64_t>(kProfileCount))
        .set_param("identity_checks", identity_checks);
    for (std::size_t p = 0; p < kProfileCount; ++p) {
      report.add_row()
          .col("profile", kProfiles[p].name)
          .col("max_runs", profile_max_runs[p]);
    }
    report.add_note(
        "multitenant soak: mixed-app fleet over one shared store under "
        "chaos; per-tenant outputs byte-identical to isolated controls, "
        "nappers checkpoint-idle and re-hydrate, burst tenant shed at the "
        "watermark, quota-eviction counters conserved");
    report.set_counters(MetricsRegistry::global().snapshot());
    const std::string path = report.write();
    if (!path.empty() && !opt.quiet) {
      std::printf("bench report: %s\n", path.c_str());
    }
  }
  std::filesystem::remove_all(tier_dir);

  if (failures == 0) {
    std::printf(
        "multitenant soak: OK (%d tenants, %d rounds, %llu identity checks, "
        "%llu checkpoints, %llu hydrations, %llu quota evictions, %llu shed)\n",
        opt.tenants, opt.rounds,
        static_cast<unsigned long long>(identity_checks),
        static_cast<unsigned long long>(checkpoints),
        static_cast<unsigned long long>(hydrations),
        static_cast<unsigned long long>(quota_evictions_cells),
        static_cast<unsigned long long>(burst.counters.shed));
    return 0;
  }
  std::fprintf(stderr, "multitenant soak: %d FAILURE(S)\n", failures);
  return 1;
}
