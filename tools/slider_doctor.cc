// slider_doctor — post-mortem analysis CLI for flight-recorder dumps.
//
// Reads one `*.pm.json` file (or every one in a directory), validates the
// CRC frame, and prints a diagnosis:
//
//   * the SLO breach timeline captured in the dump,
//   * the fault-note timeline (chaos events, degraded-mode entries) and
//     the machines they implicate,
//   * cause-attributed work from the embedded ledger snapshot, and
//   * work spikes in the time-series window — raw samples whose combiner
//     invocations stand well above the window median, attributed to the
//     ledger causes that produced them.
//
// Armed sessions (SliderConfig::record_provenance) embed a "provenance"
// section — the per-slide lineage rings — which adds two more reads:
//
//   * a provenance summary plus the worst recorded critical path, and
//   * --explain=<key> [--partition=N]: re-runs the lineage walk offline
//     against the newest recorded slide and prints the minimal
//     reused/recomputed frontier that produced that output key.
//
// Usage:
//   slider_doctor <dump.pm.json | dir> [--expect-fault=<kind>]
//                 [--explain=<key>] [--partition=<n>] [--quiet]
//
// --expect-fault=<kind> turns the tool into a gate: exit 0 iff at least
// one valid dump contains a fault note whose kind matches (substring).
// Used by the `tools_slider_doctor` ctest to prove a chaos-induced dump
// round-trips and attributes the injected fault. --explain is a gate the
// same way: exit 0 iff some dump's lineage resolves the key.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "observability/postmortem.h"
#include "observability/provenance.h"

namespace {

using slider::obs::JsonValue;

struct DoctorStats {
  std::size_t dumps_parsed = 0;
  std::size_t dumps_invalid = 0;
  bool expected_fault_seen = false;
  bool explain_resolved = false;
};

double json_median(std::vector<double> values) {
  if (values.empty()) return 0;
  std::sort(values.begin(), values.end());
  return values[values.size() / 2];
}

void print_slo_section(const JsonValue& slo, bool quiet) {
  std::size_t breached = 0;
  for (const JsonValue& v : slo.items()) {
    if (!v["ok"].as_bool(true)) ++breached;
  }
  if (!quiet) {
    std::printf("SLO verdicts (%zu, %zu breached):\n", slo.items().size(),
                breached);
    for (const JsonValue& v : slo.items()) {
      const bool ok = v["ok"].as_bool(true);
      std::printf("  %-7s %-24s %-22s value=%-12.6g threshold=%-12.6g "
                  "burn=%.6g over %llu samples%s\n",
                  ok ? "ok" : "BREACH", v["name"].as_string().c_str(),
                  v["kind"].as_string().c_str(), v["value"].as_double(),
                  v["threshold"].as_double(), v["burn_value"].as_double(),
                  static_cast<unsigned long long>(v["samples"].as_u64()),
                  v["burning"].as_bool() ? " [BURNING]" : "");
    }
  }
}

void print_fault_section(const JsonValue& faults, const std::string& expect,
                         DoctorStats& stats, bool quiet) {
  // Suspect machines: fault notes that implicate a specific machine.
  std::map<long long, std::map<std::string, std::size_t>> by_machine;
  if (!quiet) std::printf("Fault timeline (%zu notes):\n", faults.items().size());
  for (const JsonValue& f : faults.items()) {
    const std::string& kind = f["kind"].as_string();
    if (!expect.empty() && kind.find(expect) != std::string::npos) {
      stats.expected_fault_seen = true;
    }
    const double at = f["sim_time"].as_double(-1);
    const auto machine =
        static_cast<long long>(f["machine"].as_double(-1));
    if (machine >= 0) ++by_machine[machine][kind];
    if (!quiet) {
      if (at >= 0) {
        std::printf("  t=%-10.4f %-22s", at, kind.c_str());
      } else {
        std::printf("  t=?          %-22s", kind.c_str());
      }
      if (machine >= 0) std::printf(" machine=%-3lld", machine);
      std::printf(" %s\n", f["detail"].as_string().c_str());
    }
  }
  if (!quiet && !by_machine.empty()) {
    std::printf("Suspect machines:\n");
    for (const auto& [machine, kinds] : by_machine) {
      std::size_t total = 0;
      std::string detail;
      for (const auto& [kind, count] : kinds) {
        total += count;
        if (!detail.empty()) detail += ", ";
        detail += kind + " x" + std::to_string(count);
      }
      std::printf("  machine %-3lld %zu note(s): %s\n", machine, total,
                  detail.c_str());
    }
  }
}

void print_ledger_section(const JsonValue& ledger, bool quiet) {
  if (quiet) return;
  const JsonValue& by_cause = ledger["totals_by_cause"];
  std::printf("Work attribution (ledger totals by cause):\n");
  for (const auto& [cause, work] : by_cause.members()) {
    const std::uint64_t invoked = work["combiner_invocations"].as_u64();
    const std::uint64_t reused = work["combiner_reused"].as_u64();
    if (invoked == 0 && reused == 0) continue;
    std::printf("  %-22s invocations=%-10llu reused=%-10llu visited=%llu\n",
                cause.c_str(), static_cast<unsigned long long>(invoked),
                static_cast<unsigned long long>(reused),
                static_cast<unsigned long long>(
                    work["nodes_visited"].as_u64()));
  }
  const JsonValue& counters = ledger["counters"];
  std::printf("  retries=%llu failures_injected=%llu "
              "failure_forced_misses=%llu degraded_intervals=%llu\n",
              static_cast<unsigned long long>(
                  counters["task_retries"].as_u64()),
              static_cast<unsigned long long>(
                  counters["failures_injected"].as_u64()),
              static_cast<unsigned long long>(
                  counters["failure_forced_misses"].as_u64()),
              static_cast<unsigned long long>(
                  counters["degraded_mode_intervals"].as_u64()));
}

void print_scrub_section(const JsonValue& ledger, bool quiet) {
  if (quiet) return;
  const JsonValue& counters = ledger["counters"];
  const std::uint64_t verified = counters["scrub_records_verified"].as_u64();
  const std::uint64_t detected =
      counters["scrub_corruptions_detected"].as_u64();
  const std::uint64_t repairs = counters["scrub_repairs"].as_u64();
  const std::uint64_t quarantines = counters["scrub_quarantines"].as_u64();
  if (verified == 0 && detected == 0) return;
  // Conservation invariant: every detection resolves into exactly one
  // repair or one quarantine. A violated line here means the scrubber
  // died mid-resolution or the dump caught a bug.
  const bool conserved = detected == repairs + quarantines;
  std::printf("Integrity scrub: %llu record(s) verified, %llu corruption(s) "
              "detected, %llu repaired, %llu quarantined [%s]\n",
              static_cast<unsigned long long>(verified),
              static_cast<unsigned long long>(detected),
              static_cast<unsigned long long>(repairs),
              static_cast<unsigned long long>(quarantines),
              conserved ? "conserved" : "NOT CONSERVED");
}

void print_timeseries_section(const JsonValue& series, bool quiet) {
  if (quiet) return;
  const JsonValue& raw = series["raw"];
  std::vector<double> invocations;
  std::uint64_t degraded = 0;
  for (const JsonValue& s : raw.items()) {
    invocations.push_back(s["combiner_invocations"].as_double());
    if (s["durable_degraded"].as_bool()) ++degraded;
  }
  const double median = json_median(invocations);
  std::printf("Time series: %llu recorded (%zu raw in window, %llu beyond "
              "history), %llu degraded sample(s)\n",
              static_cast<unsigned long long>(
                  series["total_recorded"].as_u64()),
              raw.items().size(),
              static_cast<unsigned long long>(
                  series["samples_dropped"].as_u64()),
              static_cast<unsigned long long>(degraded));
  // Work spikes: raw samples well above the window median. The median of a
  // delta-proportional workload is small, so the initial build and any
  // failure-driven recomputation stand out immediately.
  const double threshold = std::max(median * 4.0, 1.0);
  std::printf("Work spikes (> %.6g invocations, 4x window median %.6g):\n",
              threshold, median);
  bool any = false;
  for (const JsonValue& s : raw.items()) {
    const double invoked = s["combiner_invocations"].as_double();
    if (invoked <= threshold) continue;
    any = true;
    std::string causes;
    for (const auto& [cause, count] : s["cause_invocations"].members()) {
      if (!causes.empty()) causes += ", ";
      causes += cause + "=" + std::to_string(count.as_u64());
    }
    // Tenant column: multi-tenant dumps tag every sample with its owner
    // ("-" for single-tenant sessions), so a fleet spike is attributable.
    const std::string tenant = s["tenant"].as_string();
    std::printf("  seq %-6llu %-10s tenant=%-12s sim_t=%-10.4f "
                "invocations=%-8.6g retries=%llu%s%s%s\n",
                static_cast<unsigned long long>(s["sequence"].as_u64()),
                s["kind"].as_string().c_str(),
                tenant.empty() ? "-" : tenant.c_str(),
                s["sim_start"].as_double(),
                invoked,
                static_cast<unsigned long long>(s["task_retries"].as_u64()),
                s["durable_degraded"].as_bool() ? " [degraded]" : "",
                causes.empty() ? "" : " causes: ", causes.c_str());
  }
  if (!any) std::printf("  (none)\n");
}

void print_provenance_section(const JsonValue& prov,
                              const std::string& explain_key, int partition,
                              DoctorStats& stats, bool quiet) {
  if (prov.is_null()) {
    if (!explain_key.empty() && !quiet) {
      std::printf("Provenance: (not recorded in this dump; arm "
                  "SliderConfig::record_provenance)\n");
    }
    return;
  }
  const slider::obs::ProvenanceSnapshot snap =
      slider::obs::provenance_from_json(prov);
  std::uint64_t aggregated = 0;
  for (const slider::obs::LineageAggregate& a : snap.aggregates) {
    aggregated += a.count;
  }
  if (!quiet) {
    std::printf("Provenance: %llu slide(s) recorded (%zu raw DAGs retained, "
                "%llu aggregated, %llu dropped)\n",
                static_cast<unsigned long long>(snap.total_recorded),
                snap.raw.size(), static_cast<unsigned long long>(aggregated),
                static_cast<unsigned long long>(snap.samples_dropped));
    // The worst critical path still holding a full DAG: the chain a
    // latency post-mortem should chase first.
    const slider::obs::SlideLineage* worst = nullptr;
    for (const slider::obs::SlideLineage& s : snap.raw) {
      if (worst == nullptr ||
          s.critical_path_seconds > worst->critical_path_seconds) {
        worst = &s;
      }
    }
    if (worst != nullptr && !worst->critical_path.empty()) {
      std::printf("Worst critical path (slide seq %llu, %s, partition %d, "
                  "%.6gs):\n",
                  static_cast<unsigned long long>(worst->sequence),
                  slider::obs::run_kind_name(worst->kind).data(),
                  worst->critical_path_partition,
                  worst->critical_path_seconds);
      for (const slider::obs::PathNode& n : worst->critical_path) {
        std::printf("  L%-2u %-12s %-22s %-12.6g id=%llu\n", n.level,
                    slider::obs::lineage_op_name(n.op).data(),
                    slider::obs::work_cause_name(n.cause).data(), n.seconds,
                    static_cast<unsigned long long>(n.id));
      }
    }
  }
  if (explain_key.empty()) return;
  // Offline drill-down: newest raw slide that touched the partition.
  for (std::size_t i = snap.raw.size(); i-- > 0;) {
    const slider::obs::SlideLineage& slide = snap.raw[i];
    if (partition >= static_cast<int>(slide.partitions.size()) ||
        slide.partitions[partition].empty()) {
      continue;
    }
    const slider::obs::Explanation ex =
        slider::obs::explain_slide(slide, explain_key, partition);
    if (!ex.found) continue;
    stats.explain_resolved = true;
    std::printf("Explain '%s' (slide seq %llu, %s, partition %d, apex %llu "
                "at L%u, %s membership):\n",
                explain_key.c_str(),
                static_cast<unsigned long long>(ex.sequence),
                slider::obs::run_kind_name(ex.kind).data(), ex.partition,
                static_cast<unsigned long long>(ex.apex), ex.apex_level,
                ex.exact ? "exact" : "bloom-approximate");
    for (const slider::obs::ExplainEntry& e : ex.frontier) {
      std::printf("  frontier id=%llu level=%u op=%s cause=%s "
                  "disposition=%s rows=%llu invocations=%u\n",
                  static_cast<unsigned long long>(e.id), e.level,
                  slider::obs::lineage_op_name(e.op).data(),
                  slider::obs::work_cause_name(e.cause).data(),
                  e.disposition.c_str(),
                  static_cast<unsigned long long>(e.rows), e.invocations);
    }
    std::printf("  walked=%llu untouched_children=%llu frontier=%zu\n",
                static_cast<unsigned long long>(ex.walked_nodes),
                static_cast<unsigned long long>(ex.untouched_children),
                ex.frontier.size());
    return;
  }
  std::printf("Explain '%s': no recorded slide of partition %d contains the "
              "key\n",
              explain_key.c_str(), partition);
}

bool doctor_one(const std::string& path, const std::string& expect,
                const std::string& explain_key, int partition,
                DoctorStats& stats, bool quiet) {
  const auto file = slider::obs::read_postmortem(path);
  if (!file.has_value()) {
    std::fprintf(stderr, "INVALID %s (bad frame, CRC, or JSON)\n",
                 path.c_str());
    ++stats.dumps_invalid;
    return false;
  }
  ++stats.dumps_parsed;
  const JsonValue& root = file->root;
  if (!quiet) {
    std::printf("== %s ==\n", path.c_str());
    std::printf("reason: %-28s session: %-20s sim_time: %.4f (frame v%u, "
                "schema v%llu)\n",
                root["reason"].as_string().c_str(),
                root["session"].as_string().c_str(),
                root["sim_time"].as_double(), file->version,
                static_cast<unsigned long long>(
                    root["schema_version"].as_u64()));
  }
  print_slo_section(root["slo"], quiet);
  print_fault_section(root["faults"], expect, stats, quiet);
  print_ledger_section(root["ledger"], quiet);
  print_scrub_section(root["ledger"], quiet);
  print_timeseries_section(root["timeseries"], quiet);
  print_provenance_section(root["provenance"], explain_key, partition, stats,
                           quiet);
  if (!quiet) std::printf("\n");
  return true;
}

std::string arg_value(int argc, char** argv, const char* flag) {
  const std::size_t len = std::strlen(flag);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], flag, len) == 0 && argv[i][len] == '=') {
      return std::string(argv[i] + len + 1);
    }
  }
  return "";
}

bool has_flag(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  std::string target;
  for (int i = 1; i < argc; ++i) {
    if (argv[i][0] != '-') {
      target = argv[i];
      break;
    }
  }
  if (target.empty()) {
    std::fprintf(stderr,
                 "usage: slider_doctor <dump.pm.json | dir> "
                 "[--expect-fault=<kind>] [--explain=<key>] "
                 "[--partition=<n>] [--quiet]\n");
    return 2;
  }
  const std::string expect = arg_value(argc, argv, "--expect-fault");
  const std::string explain_key = arg_value(argc, argv, "--explain");
  const std::string partition_arg = arg_value(argc, argv, "--partition");
  const int partition =
      partition_arg.empty() ? 0 : std::atoi(partition_arg.c_str());
  const bool quiet = has_flag(argc, argv, "--quiet");

  std::vector<std::string> paths;
  std::error_code ec;
  if (std::filesystem::is_directory(target, ec)) {
    for (const auto& entry : std::filesystem::directory_iterator(target, ec)) {
      const std::string p = entry.path().string();
      if (p.size() >= 8 && p.compare(p.size() - 8, 8, ".pm.json") == 0) {
        paths.push_back(p);
      }
    }
    std::sort(paths.begin(), paths.end());
  } else {
    paths.push_back(target);
  }
  if (paths.empty()) {
    std::fprintf(stderr, "slider_doctor: no *.pm.json under %s\n",
                 target.c_str());
    return 1;
  }

  DoctorStats stats;
  for (const std::string& path : paths) {
    doctor_one(path, expect, explain_key, partition, stats, quiet);
  }

  std::printf("slider_doctor: %zu dump(s) parsed, %zu invalid\n",
              stats.dumps_parsed, stats.dumps_invalid);
  if (stats.dumps_parsed == 0) return 1;
  if (!expect.empty()) {
    if (!stats.expected_fault_seen) {
      std::fprintf(stderr,
                   "slider_doctor: expected fault kind '%s' not found in any "
                   "dump\n",
                   expect.c_str());
      return 1;
    }
    std::printf("slider_doctor: expected fault '%s' attributed OK\n",
                expect.c_str());
  }
  if (!explain_key.empty()) {
    if (!stats.explain_resolved) {
      std::fprintf(stderr,
                   "slider_doctor: key '%s' not found in any dump's "
                   "recorded lineage (partition %d)\n",
                   explain_key.c_str(), partition);
      return 1;
    }
    std::printf("slider_doctor: explain frontier for '%s' resolved OK\n",
                explain_key.c_str());
  }
  return 0;
}
